(* The multicore execution engine: pool semantics (fork-join, exception
   propagation, nested-use rejection, stats, shutdown) and the
   determinism guarantee — parallel output bit-identical to sequential
   for any domain count — on the library's real fan-out workloads. *)
open Umf
module Pool = Runtime.Pool

(* --- pool unit tests ------------------------------------------------- *)

let test_map_equals_sequential () =
  Pool.with_pool ~domains:3 (fun p ->
      let xs = Array.init 257 (fun i -> i) in
      let f x = (x * x) + 1 in
      let expected = Array.map f xs in
      Alcotest.(check (array int)) "257 tasks, 3 domains" expected
        (Pool.parallel_map p f xs);
      Alcotest.(check (array int)) "chunk 1" expected
        (Pool.parallel_map ~chunk:1 p f xs);
      Alcotest.(check (array int)) "chunk larger than input" expected
        (Pool.parallel_map ~chunk:1000 p f xs);
      Alcotest.(check (array int)) "empty input" [||]
        (Pool.parallel_map p f [||]))

let test_map_list_preserves_order () =
  Pool.with_pool ~domains:2 (fun p ->
      let xs = List.init 100 string_of_int in
      Alcotest.(check (list string)) "order kept" xs
        (Pool.map_list p Fun.id xs))

let test_parallel_for_covers_all_indices () =
  Pool.with_pool ~domains:4 (fun p ->
      let hits = Array.make 1000 0 in
      Pool.parallel_for p 1000 (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool) "each index exactly once" true
        (Array.for_all (fun h -> h = 1) hits))

exception Boom of int

let test_exception_propagation () =
  Pool.with_pool ~domains:2 (fun p ->
      let raised =
        try
          ignore
            (Pool.parallel_map p
               (fun i -> if i = 41 then raise (Boom i) else i)
               (Array.init 100 Fun.id));
          false
        with Boom 41 -> true
      in
      Alcotest.(check bool) "task exception re-raised in caller" true raised;
      (* the pool survives a failed section *)
      Alcotest.(check (array int)) "pool usable afterwards"
        [| 0; 2; 4 |]
        (Pool.parallel_map p (fun i -> 2 * i) [| 0; 1; 2 |]))

let test_nested_use_rejected () =
  Pool.with_pool ~domains:2 (fun p ->
      let rejected =
        try
          ignore
            (Pool.parallel_map p
               (fun _ -> Pool.parallel_map p Fun.id [| 1 |])
               [| 0 |]);
          false
        with Invalid_argument _ -> true
      in
      Alcotest.(check bool) "section inside a worker task rejected" true
        rejected)

let test_stats_counters () =
  Pool.with_pool ~domains:2 (fun p ->
      Alcotest.(check int) "size" 2 (Pool.size p);
      ignore (Pool.parallel_map ~stage:"a" p Fun.id (Array.init 10 Fun.id));
      ignore (Pool.parallel_map ~stage:"a" p Fun.id (Array.init 7 Fun.id));
      ignore (Pool.parallel_map ~stage:"b" p Fun.id (Array.init 5 Fun.id));
      let s = Pool.stats p in
      Alcotest.(check int) "domains" 2 s.Runtime.domains;
      Alcotest.(check int) "sections" 3 s.Runtime.sections;
      Alcotest.(check int) "tasks" 22 s.Runtime.tasks;
      Alcotest.(check bool) "wall non-negative" true (s.Runtime.wall >= 0.);
      match Pool.stage_stats p with
      | [ ("a", sa); ("b", sb) ] ->
          Alcotest.(check int) "stage a sections" 2 sa.Runtime.sections;
          Alcotest.(check int) "stage a tasks" 17 sa.Runtime.tasks;
          Alcotest.(check int) "stage b tasks" 5 sb.Runtime.tasks
      | l -> Alcotest.failf "expected stages a,b; got %d entries" (List.length l))

let test_shutdown_semantics () =
  let p = Pool.create ~domains:2 () in
  ignore (Pool.parallel_map p Fun.id [| 1; 2 |]);
  Pool.shutdown p;
  Pool.shutdown p;
  (* idempotent *)
  let rejected =
    try
      ignore (Pool.parallel_map p Fun.id [| 1 |]);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "use after shutdown rejected" true rejected;
  let bad =
    try
      ignore (Pool.create ~domains:0 ());
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "domains < 1 rejected" true bad

let test_seeds_are_stable_and_distinct () =
  Alcotest.(check int) "mix is a pure function" (Runtime.Seeds.mix 7 3)
    (Runtime.Seeds.mix 7 3);
  let n = 1000 in
  let tbl = Hashtbl.create n in
  for i = 0 to n - 1 do
    Hashtbl.replace tbl (Runtime.Seeds.mix 42 i) ()
  done;
  Alcotest.(check int) "1000 indices give 1000 distinct seeds" n
    (Hashtbl.length tbl);
  let a = Rng.float (Runtime.Seeds.rng ~root:1 0)
  and b = Rng.float (Runtime.Seeds.rng ~root:1 1) in
  Alcotest.(check bool) "adjacent streams differ" true (a <> b)

(* --- determinism on the real workloads ------------------------------- *)

let p = Sir.default_params

let di = Sir.di p

let model = Sir.model p

let sym = Sir.make p

let check_env name (lo1, hi1) (lo2, hi2) =
  Array.iteri
    (fun i v ->
      Alcotest.(check bool) (name ^ " lower") true (v = lo2.(i));
      Alcotest.(check bool) (name ^ " upper") true (hi1.(i) = hi2.(i)))
    lo1

let test_uncertain_sweep_deterministic () =
  let times = [| 0.5; 1.; 2. |] in
  let run ?pool () =
    Uncertain.transient_envelope ?pool ~dt:0.05 ~grid:5 di ~x0:Sir.x0 ~times
  in
  let seq = run () in
  Pool.with_pool ~domains:1 (fun p1 ->
      check_env "jobs=1 vs sequential" seq (run ~pool:p1 ()));
  Pool.with_pool ~domains:4 (fun p4 ->
      check_env "jobs=4 vs sequential" seq (run ~pool:p4 ()))

let test_reach_cloud_deterministic () =
  let run pool =
    Reach.sample_states ~pool ~dt:0.05 di ~x0:Sir.x0 ~horizon:2.
      ~n_controls:48 (Rng.create 5)
    |> Array.of_list
  in
  let c1 = Pool.with_pool ~domains:1 run in
  let c4 = Pool.with_pool ~domains:4 run in
  Alcotest.(check bool) "jobs=1 and jobs=4 clouds bit-identical" true
    (c1 = c4)

let test_ssa_replicate_deterministic () =
  let run ?pool () =
    Ssa.replicate ?pool model ~n:100 ~x0:Sir.x0
      ~policy:(Sir.policy_theta1 p) ~tmax:2. ~reps:10 ~seed:3
  in
  let seq = run () in
  let par = Pool.with_pool ~domains:4 (fun p4 -> run ~pool:p4 ()) in
  Alcotest.(check bool) "replication batch bit-identical" true (seq = par)

let test_inclusion_fraction_deterministic () =
  (* > 1024 synthetic states forces the chunked parallel fold *)
  let spec_seq = Analysis.spec sym in
  let region = Analysis.steady_state_region_2d ~x_start:Sir.x0 spec_seq in
  let rng = Rng.create 11 in
  let states =
    Array.init 3000 (fun _ -> [| Rng.float rng; Rng.float rng |])
  in
  let seq = Analysis.inclusion_fraction ~tol:3e-3 spec_seq region states in
  let seq_exc = Analysis.mean_exceedance spec_seq region states in
  Pool.with_pool ~domains:4 (fun p4 ->
      let spec_par = Analysis.spec ~pool:p4 sym in
      let par = Analysis.inclusion_fraction ~tol:3e-3 spec_par region states in
      let par_exc = Analysis.mean_exceedance spec_par region states in
      Alcotest.(check int) "inside counts equal" seq.Analysis.inside
        par.Analysis.inside;
      Alcotest.(check (float 0.)) "fractions bit-identical"
        seq.Analysis.fraction par.Analysis.fraction;
      Alcotest.(check (float 0.)) "strict fractions bit-identical"
        seq.Analysis.strict par.Analysis.strict;
      Alcotest.(check (float 0.)) "mean exceedance bit-identical"
        seq_exc.Analysis.mean par_exc.Analysis.mean;
      Alcotest.(check (float 0.)) "worst exceedance bit-identical"
        seq_exc.Analysis.worst par_exc.Analysis.worst)

let test_pontryagin_series_deterministic () =
  let times = [| 1.; 2. |] in
  let seq =
    Pontryagin.bound_series ~steps:60 di ~x0:Sir.x0 ~coord:1 ~times
  in
  let par =
    Pool.with_pool ~domains:3 (fun p3 ->
        Pontryagin.bound_series ~pool:p3 ~steps:60 di ~x0:Sir.x0 ~coord:1
          ~times)
  in
  Alcotest.(check bool) "bound series bit-identical" true (seq = par)

let suites =
  [
    ( "runtime-pool",
      [
        Alcotest.test_case "map equals sequential" `Quick test_map_equals_sequential;
        Alcotest.test_case "map_list order" `Quick test_map_list_preserves_order;
        Alcotest.test_case "parallel_for coverage" `Quick test_parallel_for_covers_all_indices;
        Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
        Alcotest.test_case "nested use rejected" `Quick test_nested_use_rejected;
        Alcotest.test_case "stats counters" `Quick test_stats_counters;
        Alcotest.test_case "shutdown semantics" `Quick test_shutdown_semantics;
        Alcotest.test_case "seed splitting" `Quick test_seeds_are_stable_and_distinct;
      ] );
    ( "runtime-determinism",
      [
        Alcotest.test_case "uncertain sweep" `Quick test_uncertain_sweep_deterministic;
        Alcotest.test_case "reach MC cloud" `Quick test_reach_cloud_deterministic;
        Alcotest.test_case "ssa replication" `Quick test_ssa_replicate_deterministic;
        Alcotest.test_case "inclusion fraction" `Quick test_inclusion_fraction_deterministic;
        Alcotest.test_case "pontryagin series" `Quick test_pontryagin_series_deterministic;
      ] );
  ]

let () = Alcotest.run "umf_runtime" suites
