(* Fast parallel smoke check (the @parallel-smoke alias): spins up a
   small pool, exercises one deterministic sweep and one seeded
   stochastic batch, and fails loudly if parallel output ever diverges
   from sequential. *)
open Umf

let () =
  let p = Sir.default_params in
  let di = Sir.di p in
  let model = Sir.model p in
  let times = [| 0.5; 1. |] in
  let seq_lo, seq_hi =
    Uncertain.transient_envelope ~dt:0.1 ~grid:3 di ~x0:Sir.x0 ~times
  in
  let seq_reps =
    Ssa.replicate model ~n:50 ~x0:Sir.x0 ~policy:(Sir.policy_theta1 p)
      ~tmax:1. ~reps:4 ~seed:1
  in
  Runtime.Pool.with_pool ~domains:2 (fun pool ->
      let par_lo, par_hi =
        Uncertain.transient_envelope ~pool ~dt:0.1 ~grid:3 di ~x0:Sir.x0
          ~times
      in
      if not (par_lo = seq_lo && par_hi = seq_hi) then begin
        prerr_endline "parallel-smoke: uncertain sweep diverged";
        exit 1
      end;
      let par_reps =
        Ssa.replicate ~pool model ~n:50 ~x0:Sir.x0
          ~policy:(Sir.policy_theta1 p) ~tmax:1. ~reps:4 ~seed:1
      in
      if par_reps <> seq_reps then begin
        prerr_endline "parallel-smoke: ssa replication diverged";
        exit 1
      end;
      let s = Runtime.Pool.stats pool in
      Printf.printf "parallel-smoke OK (%s)\n" (Runtime.stats_to_string s))
