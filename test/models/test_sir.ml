open Umf_numerics
open Umf_meanfield
open Umf_models

let p = Sir.default_params

(* Eq. (11) of the paper in closed form — the golden reference the
   symbolic model must keep reproducing *)
let drift x theta =
  let xs = x.(0) and xi = x.(1) and th = theta.(0) in
  [|
    p.Sir.c
    -. ((p.Sir.a +. p.Sir.c) *. xs)
    -. (p.Sir.c *. xi)
    -. (th *. xs *. xi);
    (p.Sir.a *. xs) +. (th *. xs *. xi) -. (p.Sir.b *. xi);
  |]

let jacobian x theta =
  let xs = x.(0) and xi = x.(1) and th = theta.(0) in
  Mat.of_arrays
    [|
      [| -.(p.Sir.a +. p.Sir.c) -. (th *. xi); -.p.Sir.c -. (th *. xs) |];
      [| p.Sir.a +. (th *. xi); (th *. xs) -. p.Sir.b |];
    |]

let test_default_params () =
  Alcotest.(check (float 1e-12)) "a" 0.1 p.Sir.a;
  Alcotest.(check (float 1e-12)) "b" 5. p.Sir.b;
  Alcotest.(check (float 1e-12)) "c" 1. p.Sir.c;
  Alcotest.(check (float 1e-12)) "x0 S" 0.7 Sir.x0.(0);
  Alcotest.(check (float 1e-12)) "x0 I" 0.3 Sir.x0.(1)

let test_model_drift_matches_closed_form () =
  let m = Sir.model p in
  let check x theta =
    let from_classes = Population.drift m x [| theta |] in
    let closed = drift x [| theta |] in
    Alcotest.(check bool)
      (Printf.sprintf "drift at (%g, %g), theta=%g" x.(0) x.(1) theta)
      true
      (Vec.approx_equal ~tol:1e-12 closed from_classes)
  in
  List.iter
    (fun (s, i, th) -> check [| s; i |] th)
    [ (0.7, 0.3, 1.); (0.5, 0.1, 5.); (0.9, 0.05, 10.); (0.2, 0.6, 3.) ]

let test_model3_reduction () =
  (* projecting the 3-variable drift onto (S, I) with R = 1 - S - I must
     equal the reduced drift *)
  let m3 = Sir.model3 p in
  List.iter
    (fun (s, i, th) ->
      let r = 1. -. s -. i in
      let f3 = Population.drift m3 [| s; i; r |] [| th |] in
      let f2 = drift [| s; i |] [| th |] in
      Alcotest.(check (float 1e-12)) "fS matches" f2.(0) f3.(0);
      Alcotest.(check (float 1e-12)) "fI matches" f2.(1) f3.(1);
      (* conservation: the 3-var drift sums to zero *)
      Alcotest.(check (float 1e-12)) "mass conserved" 0. (Vec.sum f3))
    [ (0.7, 0.3, 1.); (0.5, 0.1, 5.); (0.3, 0.3, 10.) ]

let test_jacobian_matches_fd () =
  let x = [| 0.6; 0.2 |] and theta = [| 4. |] in
  let analytic = jacobian x theta in
  let fd = Diff.jacobian (fun y -> drift y theta) x in
  Alcotest.(check bool) "jacobian matches FD" true
    (Mat.approx_equal ~tol:1e-5 analytic fd);
  let exact = Model.jacobian (Sir.make p) x theta in
  Alcotest.(check bool) "symbolic jacobian matches closed form" true
    (Mat.approx_equal ~tol:1e-12 analytic exact)

let test_di_wiring () =
  let di = Sir.di p in
  Alcotest.(check int) "dim 2" 2 di.Umf_diffinc.Di.dim;
  let f = di.Umf_diffinc.Di.drift Sir.x0 [| 2. |] in
  Alcotest.(check bool) "drift wired" true
    (Vec.approx_equal f (drift Sir.x0 [| 2. |]))

let test_policy_theta1_bounds () =
  let pol = Sir.policy_theta1 p in
  let inst = pol.Policy.instantiate () in
  let th = inst.Policy.theta 0. Sir.x0 in
  Alcotest.(check (float 1e-12)) "starts at theta_max" p.Sir.theta_max th.(0);
  inst.Policy.notify 1. [| 0.4; 0.3 |];
  Alcotest.(check (float 1e-12)) "drops below 0.5" p.Sir.theta_min
    (inst.Policy.theta 1. [| 0.4; 0.3 |]).(0)

let test_policy_theta2_rate () =
  let pol = Sir.policy_theta2 p in
  let inst = pol.Policy.instantiate () in
  Alcotest.(check (float 1e-12)) "rate 5 X_I" (5. *. 0.3)
    (inst.Policy.jump_rate 0. Sir.x0)

let test_invariant_simplex_under_ssa () =
  (* S + I <= 1 and both non-negative along a stochastic run *)
  let m = Sir.model p in
  let rng = Rng.create 3 in
  let traj =
    Ssa.trajectory m ~n:200 ~x0:Sir.x0 ~policy:(Sir.policy_theta1 p) ~tmax:5. rng
  in
  Array.iter
    (fun x ->
      Alcotest.(check bool) "simplex invariant" true
        (x.(0) >= -1e-9 && x.(1) >= -1e-9 && x.(0) +. x.(1) <= 1. +. 1e-9))
    traj.Ode.Traj.states

let test_fluid_limit_decay () =
  (* with theta fixed the infection dies towards the endemic level:
     integrate the ODE and check I stays in (0, 0.3] and converges *)
  let di = Sir.di p in
  let traj =
    Umf_diffinc.Di.integrate_constant di ~theta:[| 1. |] ~x0:Sir.x0 ~horizon:50.
      ~dt:0.01
  in
  let final = Ode.Traj.last traj in
  let f = drift final [| 1. |] in
  Alcotest.(check bool) "reached equilibrium" true (Vec.norm_inf f < 1e-6);
  Alcotest.(check bool) "endemic level positive" true (final.(1) > 0.)

let prop_drift_keeps_simplex_invariant =
  (* on the boundary of the simplex the drift never points outward *)
  let gen =
    QCheck.Gen.(pair (float_range 0. 1.) (float_range 1. 10.))
  in
  QCheck.Test.make ~name:"drift points inward on simplex boundary" ~count:200
    (QCheck.make gen) (fun (s, th) ->
      (* edge I = 0 *)
      let f_i0 = drift [| s; 0. |] [| th |] in
      (* edge S = 0 *)
      let i = s in
      let f_s0 = drift [| 0.; i |] [| th |] in
      (* edge S + I = 1 *)
      let f_edge = drift [| s; 1. -. s |] [| th |] in
      f_i0.(1) >= -1e-12 && f_s0.(0) >= -1e-12
      && f_edge.(0) +. f_edge.(1) <= 1e-12)

let suites =
  [
    ( "sir",
      [
        Alcotest.test_case "default parameters" `Quick test_default_params;
        Alcotest.test_case "classes match closed form" `Quick test_model_drift_matches_closed_form;
        Alcotest.test_case "3-var reduction" `Quick test_model3_reduction;
        Alcotest.test_case "jacobian vs FD" `Quick test_jacobian_matches_fd;
        Alcotest.test_case "di wiring" `Quick test_di_wiring;
        Alcotest.test_case "policy theta1" `Quick test_policy_theta1_bounds;
        Alcotest.test_case "policy theta2 rate" `Quick test_policy_theta2_rate;
        Alcotest.test_case "SSA keeps simplex" `Quick test_invariant_simplex_under_ssa;
        Alcotest.test_case "fluid equilibrium" `Quick test_fluid_limit_decay;
        QCheck_alcotest.to_alcotest prop_drift_keeps_simplex_invariant;
      ] );
  ]
