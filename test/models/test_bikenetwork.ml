open Umf_numerics
open Umf_meanfield
open Umf_models

let p = Bikenetwork.default_params

let test_validation () =
  Alcotest.check_raises "routing sums"
    (Invalid_argument "Bikenetwork: routing must sum to 1") (fun () ->
      ignore (Bikenetwork.model { p with Bikenetwork.routing = [| 0.5; 0.5; 0.5 |] }));
  Alcotest.check_raises "fleet range"
    (Invalid_argument "Bikenetwork: fleet density must be in (0, 1)") (fun () ->
      ignore (Bikenetwork.model (Bikenetwork.with_fleet p 1.5)))

let test_x0_structure () =
  let x0 = Bikenetwork.x0 p in
  Alcotest.(check int) "dim" 4 (Vec.dim x0);
  Alcotest.(check (float 1e-12)) "fleet conserved at start" 0.6
    (Bikenetwork.total_bikes x0);
  Alcotest.(check (float 1e-12)) "nothing in transit" 0. x0.(3)

let test_drift_conserves_fleet () =
  let m = Bikenetwork.model p in
  List.iter
    (fun (x, th) ->
      let f = Population.drift m x th in
      Alcotest.(check (float 1e-12)) "sum of drift = 0" 0. (Vec.sum f))
    [
      (Bikenetwork.x0 p, [| 0.8; 0.4; 0.4 |]);
      ([| 0.05; 0.2; 0.3; 0.05 |], [| 1.2; 0.6; 0.2 |]);
      ([| 0.; 0.1; 0.1; 0.4 |], [| 0.4; 0.2; 0.2 |]);
    ]

let test_boundary_rates () =
  let m = Bikenetwork.model p in
  (* empty station: no departures from it *)
  let x_empty = [| 0.; 0.2; 0.2; 0.2 |] in
  let f = Population.drift m x_empty [| 1.2; 0.6; 0.6 |] in
  (* station 1 only gains (returns), never loses *)
  Alcotest.(check bool) "empty station cannot lose bikes" true (f.(0) >= 0.);
  (* full station: returns blocked *)
  let cap = 1. /. 3. in
  let x_full = [| cap; 0.1; 0.1; 0.1 |] in
  let f2 = Population.drift m x_full [| 1.2; 0.6; 0.6 |] in
  Alcotest.(check bool) "full station only loses" true (f2.(0) <= 0.)

let test_ssa_conserves_fleet () =
  let m = Bikenetwork.model p in
  let rng = Rng.create 3 in
  let x0 = Bikenetwork.x0 p in
  let traj =
    Ssa.trajectory m ~n:300 ~x0
      ~policy:(Policy.constant [| 0.8; 0.4; 0.4 |])
      ~tmax:10. rng
  in
  Array.iter
    (fun x ->
      Alcotest.(check (float 1e-9)) "fleet conserved" 0.6
        (Bikenetwork.total_bikes x);
      for i = 0 to 2 do
        Alcotest.(check bool) "station within capacity" true
          (x.(i) >= -1e-9 && x.(i) <= (1. /. 3.) +. 1e-9)
      done)
    traj.Ode.Traj.states

let test_fluid_balance () =
  (* with uniform demand and routing, the symmetric state is invariant *)
  let sym =
    {
      p with
      Bikenetwork.demand =
        [| Interval.make 0.5 0.5; Interval.make 0.5 0.5; Interval.make 0.5 0.5 |];
    }
  in
  let di = Bikenetwork.di sym in
  let eq =
    Ode.integrate_to
      (fun _t x -> di.Umf_diffinc.Di.drift x [| 0.5; 0.5; 0.5 |])
      ~t0:0. ~y0:(Bikenetwork.x0 sym) ~t1:100. ~dt:0.01
  in
  Alcotest.(check (float 1e-6)) "stations symmetric" eq.(0) eq.(1);
  Alcotest.(check (float 1e-6)) "stations symmetric 2" eq.(1) eq.(2);
  (* transit balance: mu z = total departure rate = sum theta_i *)
  Alcotest.(check (float 1e-6)) "Little's law for transit" (3. *. 0.5 /. 3.)
    eq.(3)

let test_starvation_verification () =
  (* without rebalancing, a sustained downtown surge starves station 1
     whatever the fleet (worst-case inflow mu z p1 < theta1_max); with
     enough truck capacity the network is verified safe *)
  let level = 0.01 in
  let verdict r =
    let p' = Bikenetwork.with_rebalance p r in
    Umf_diffinc.Safety.verify ~steps:150 ~check_points:8
      (Bikenetwork.di p')
      ~x0:(Bikenetwork.x0 p')
      ~horizon:8.
      (Bikenetwork.starvation_constraints p' ~level)
  in
  (match verdict 0. with
  | Umf_diffinc.Safety.Violated w ->
      Alcotest.(check bool) "downtown starves without rebalancing" true
        (w.Umf_diffinc.Safety.constraint_.Umf_diffinc.Safety.label
        = "station 1 keeps >= 0.01 bikes")
  | Umf_diffinc.Safety.Safe _ ->
      Alcotest.fail "no rebalancing should starve under a surge");
  match verdict 4. with
  | Umf_diffinc.Safety.Safe margin ->
      Alcotest.(check bool) "rebalanced network safe" true (margin > 0.)
  | Umf_diffinc.Safety.Violated w ->
      Alcotest.failf "rebalanced network starves at t=%.2f (%s)"
        w.Umf_diffinc.Safety.time
        w.Umf_diffinc.Safety.constraint_.Umf_diffinc.Safety.label

let suites =
  [
    ( "bikenetwork",
      [
        Alcotest.test_case "validation" `Quick test_validation;
        Alcotest.test_case "initial state" `Quick test_x0_structure;
        Alcotest.test_case "drift conserves fleet" `Quick test_drift_conserves_fleet;
        Alcotest.test_case "boundary rates" `Quick test_boundary_rates;
        Alcotest.test_case "SSA conserves fleet" `Quick test_ssa_conserves_fleet;
        Alcotest.test_case "symmetric fluid balance" `Quick test_fluid_balance;
        Alcotest.test_case "starvation verification" `Slow test_starvation_verification;
      ] );
  ]
