let () =
  Alcotest.run "umf_models"
    (Test_sir.suites @ Test_gps.suites @ Test_bikesharing.suites
   @ Test_sis.suites @ Test_cholera.suites @ Test_loadbalance.suites
   @ Test_bikenetwork.suites @ Test_equiv.suites)
