(* The model-consistency gate (dune alias @model-consistency).

   Every bundled model used to carry a hand-written closure drift next
   to its symbolic twin; the symbolic IR is now the single source of
   truth and the closures are gone from lib/models.  The closures below
   are golden copies of that deleted code, frozen here as a regression
   reference: the compiled tape drift must keep reproducing them.  Do
   NOT "fix" a golden closure to match the model — if this gate fails,
   the model (or the compiler) changed meaning. *)

open Umf_numerics
open Umf_meanfield
open Umf_models

(* a golden model is a list of (change vector, rate closure); its drift
   is the rate-weighted sum of change vectors, as Population.drift *)
let golden_drift dim transitions x th =
  let v = Vec.zeros dim in
  List.iter
    (fun (change, rate) ->
      let r = rate x th in
      Array.iteri (fun i c -> v.(i) <- v.(i) +. (c *. r)) change)
    transitions;
  v

(* ---------- golden copies of the deleted closure models ---------- *)

let golden_sir () =
  let p = Sir.default_params in
  let infection x (th : Vec.t) =
    (p.Sir.a *. x.(0)) +. (th.(0) *. x.(0) *. x.(1))
  in
  ( Sir.make p,
    [
      ([| -1.; 1. |], infection);
      ([| 0.; -1. |], fun x _ -> p.Sir.b *. x.(1));
      ([| 1.; 0. |], fun x _ -> p.Sir.c *. Float.max 0. (1. -. x.(0) -. x.(1)));
    ] )

let golden_sir3 () =
  let p = Sir.default_params in
  let infection x (th : Vec.t) =
    (p.Sir.a *. x.(0)) +. (th.(0) *. x.(0) *. x.(1))
  in
  ( Sir.make3 p,
    [
      ([| -1.; 1.; 0. |], infection);
      ([| 0.; -1.; 1. |], fun x _ -> p.Sir.b *. x.(1));
      ([| 1.; 0.; -1. |], fun x _ -> p.Sir.c *. x.(2));
    ] )

let golden_sis () =
  let p = Sis.default_params in
  ( Sis.make p,
    [
      ( [| 1. |],
        fun x (th : Vec.t) ->
          let clean = Float.max 0. (1. -. x.(0)) in
          (p.Sis.a *. clean) +. (th.(0) *. x.(0) *. clean) );
      ([| -1. |], fun x _ -> p.Sis.delta *. x.(0));
    ] )

let golden_bikesharing () =
  ( Bikesharing.make Bikesharing.default_params,
    [
      ([| -1. |], fun x (th : Vec.t) -> if x.(0) > 1e-12 then th.(0) else 0.);
      ( [| 1. |],
        fun x (th : Vec.t) -> if x.(0) < 1. -. 1e-12 then th.(1) else 0. );
    ] )

let golden_cholera () =
  let p = Cholera.default_params in
  ( Cholera.make p,
    [
      ( [| -1.; 1.; 0. |],
        fun x (th : Vec.t) ->
          (p.Cholera.a *. x.(0)) +. (th.(0) *. x.(0) *. x.(2)) );
      ([| 0.; -1.; 0. |], fun x _ -> p.Cholera.gamma *. x.(1));
      ( [| 1.; 0.; 0. |],
        fun x _ -> p.Cholera.rho *. Float.max 0. (1. -. x.(0) -. x.(1)) );
      ([| 0.; 0.; 1. |], fun x _ -> p.Cholera.xi *. x.(1));
      ([| 0.; 0.; -1. |], fun x _ -> p.Cholera.delta *. x.(2));
    ] )

(* the deleted float GPS service rate, clamp and backlog guard included *)
let gps_service p ~q1 ~q2 i =
  let clamp q = Float.min 1. (Float.max 0. q) in
  let q1 = clamp q1 and q2 = clamp q2 in
  let backlog =
    (p.Gps.phi1 *. p.Gps.gamma1 *. q1) +. (p.Gps.phi2 *. p.Gps.gamma2 *. q2)
  in
  if backlog <= 1e-12 then 0.
  else if i = 1 then
    p.Gps.mu1 *. p.Gps.capacity *. p.Gps.phi1 *. p.Gps.gamma1 *. q1 /. backlog
  else
    p.Gps.mu2 *. p.Gps.capacity *. p.Gps.phi2 *. p.Gps.gamma2 *. q2 /. backlog

let golden_gps_poisson () =
  let p = Gps.default_params in
  let arrival i gamma x (th : Vec.t) =
    th.(i - 1) *. gamma *. Float.max 0. (1. -. x.(i - 1))
  in
  let serve i x _ = gps_service p ~q1:x.(0) ~q2:x.(1) i in
  ( Gps.make_poisson p,
    [
      ([| 1. /. p.Gps.gamma1; 0. |], arrival 1 p.Gps.gamma1);
      ([| -1. /. p.Gps.gamma1; 0. |], serve 1);
      ([| 0.; 1. /. p.Gps.gamma2 |], arrival 2 p.Gps.gamma2);
      ([| 0.; -1. /. p.Gps.gamma2 |], serve 2);
    ] )

let golden_gps_map () =
  let p = Gps.default_params in
  let qi i (x : Vec.t) = x.(2 * (i - 1)) in
  let di_ i (x : Vec.t) = x.((2 * (i - 1)) + 1) in
  let ei i x = Float.max 0. (1. -. qi i x -. di_ i x) in
  let activation i gamma ai x _ = ai *. gamma *. ei i x in
  let arrival i gamma x (th : Vec.t) =
    th.(i - 1) *. gamma *. Float.max 0. (di_ i x)
  in
  let serve i x _ = gps_service p ~q1:(qi 1 x) ~q2:(qi 2 x) i in
  let step i gamma ~dq ~dd =
    let v = Vec.zeros 4 in
    v.(2 * (i - 1)) <- dq /. gamma;
    v.((2 * (i - 1)) + 1) <- dd /. gamma;
    v
  in
  let g1 = p.Gps.gamma1 and g2 = p.Gps.gamma2 in
  ( Gps.make_map p,
    [
      (step 1 g1 ~dq:0. ~dd:1., activation 1 g1 p.Gps.a1);
      (step 1 g1 ~dq:1. ~dd:(-1.), arrival 1 g1);
      (step 1 g1 ~dq:(-1.) ~dd:0., serve 1);
      (step 2 g2 ~dq:0. ~dd:1., activation 2 g2 p.Gps.a2);
      (step 2 g2 ~dq:1. ~dd:(-1.), arrival 2 g2);
      (step 2 g2 ~dq:(-1.) ~dd:0., serve 2);
    ] )

let golden_loadbalance () =
  let p = Loadbalance.default_params in
  let kk = p.Loadbalance.k_max and d = p.Loadbalance.d in
  let clamp01 v = Float.min 1. (Float.max 0. v) in
  let ipow x n =
    let rec go acc n = if n = 0 then acc else go (acc *. x) (n - 1) in
    go 1. n
  in
  let x_at (x : Vec.t) k =
    if k = 0 then 1. else if k > kk then 0. else clamp01 x.(k - 1)
  in
  let unit k s =
    let v = Vec.zeros kk in
    v.(k - 1) <- s;
    v
  in
  let transitions =
    List.concat_map
      (fun k ->
        [
          ( unit k 1.,
            fun x (th : Vec.t) ->
              th.(0)
              *. Float.max 0. (ipow (x_at x (k - 1)) d -. ipow (x_at x k) d) );
          ( unit k (-1.),
            fun x _ -> Float.max 0. (x_at x k -. x_at x (k + 1)) );
        ])
      (List.init kk (fun i -> i + 1))
  in
  (Loadbalance.make p, transitions)

let golden_bikenetwork p =
  let k = p.Bikenetwork.stations and cap = Bikenetwork.capacity p in
  let z_idx = k in
  let unit i s =
    let v = Vec.zeros (k + 1) in
    v.(i) <- s;
    v
  in
  let departure i =
    ( Vec.add (unit i (-1.)) (unit z_idx 1.),
      fun (x : Vec.t) (th : Vec.t) -> if x.(i) > 1e-12 then th.(i) else 0. )
  in
  let arrival i =
    ( Vec.add (unit i 1.) (unit z_idx (-1.)),
      fun (x : Vec.t) _ ->
        if x.(i) < cap -. 1e-12 then
          p.Bikenetwork.mu *. Float.max 0. x.(z_idx) *. p.Bikenetwork.routing.(i)
        else 0. )
  in
  let rebalances =
    if p.Bikenetwork.rebalance = 0. then []
    else
      List.concat_map
        (fun j ->
          List.filter_map
            (fun i ->
              if i = j then None
              else
                Some
                  ( Vec.add (unit j (-1.)) (unit i 1.),
                    fun (x : Vec.t) _ ->
                      let stock = Float.max 0. x.(j) in
                      let room = Float.max 0. (cap -. x.(i)) /. cap in
                      p.Bikenetwork.rebalance *. stock *. room ))
            (List.init k Fun.id))
        (List.init k Fun.id)
  in
  ( Bikenetwork.make p,
    List.init k departure @ List.init k arrival @ rebalances )

let golden_models () =
  [
    ("sir", golden_sir ());
    ("sir3", golden_sir3 ());
    ("sis", golden_sis ());
    ("bike", golden_bikesharing ());
    ("cholera", golden_cholera ());
    ("gps-poisson", golden_gps_poisson ());
    ("gps-map", golden_gps_map ());
    ("jsq2", golden_loadbalance ());
    ("bikenet", golden_bikenetwork Bikenetwork.default_params);
    ( "bikenet+rebalance",
      golden_bikenetwork
        (Bikenetwork.with_rebalance Bikenetwork.default_params 0.5) );
  ]

(* ---------- the gate ---------- *)

let n_samples = 40

(* symbolic simplification may reassociate sums, so the match is tight
   but not bit-level *)
let close a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1. (Float.abs b)

let test_drift_matches_golden () =
  List.iter
    (fun (name, (m, transitions)) ->
      let rng = Rng.create 2016 in
      let dim = Model.dim m in
      for k = 1 to n_samples do
        let x = Optim.Box.sample_uniform rng (Model.clip m) in
        let th = Optim.Box.sample_uniform rng (Model.theta m) in
        let compiled = Model.drift m x th in
        let golden = golden_drift dim transitions x th in
        Array.iteri
          (fun i gi ->
            Alcotest.(check bool)
              (Printf.sprintf "%s drift[%d] sample %d: %g vs golden %g" name i
                 k compiled.(i) gi)
              true
              (close compiled.(i) gi))
          golden
      done)
    (golden_models ())

(* the compiled tape must agree with the Expr interpreter bit-for-bit
   on every registered model — tape bugs cannot hide behind tolerance *)
let test_tape_matches_interpreter () =
  List.iter
    (fun (name, m) ->
      let rng = Rng.create 7 in
      let exprs = Model.drift_exprs m in
      for k = 1 to n_samples do
        let x = Optim.Box.sample_uniform rng (Model.clip m) in
        let th = Optim.Box.sample_uniform rng (Model.theta m) in
        let compiled = Model.drift m x th in
        Array.iteri
          (fun i e ->
            let interpreted = Expr.eval e ~x ~th in
            Alcotest.(check bool)
              (Printf.sprintf "%s tape[%d] = interpreter, sample %d" name i k)
              true
              (compiled.(i) = interpreted))
          exprs
      done)
    (Registry.all ())

(* jacobians: the compiled tape must agree with the interpreted exact
   symbolic derivative of each drift coordinate *)
let test_jacobian_matches_interpreter () =
  List.iter
    (fun (name, m) ->
      let rng = Rng.create 11 in
      let dim = Model.dim m in
      let jac_exprs =
        Array.map
          (fun fi -> Array.init dim (fun j -> Expr.diff_var fi j))
          (Model.drift_exprs m)
      in
      for k = 1 to 10 do
        let x = Optim.Box.sample_uniform rng (Model.clip m) in
        let th = Optim.Box.sample_uniform rng (Model.theta m) in
        let jac = Model.jacobian m x th in
        Array.iteri
          (fun i row ->
            Array.iteri
              (fun j e ->
                let interpreted = Expr.eval e ~x ~th in
                Alcotest.(check bool)
                  (Printf.sprintf "%s jac[%d,%d] sample %d" name i j k)
                  true
                  (close (Mat.get jac i j) interpreted))
              row)
          jac_exprs
      done)
    (Registry.all ())

(* the interval drift hull over (clip, Θ) must contain every pointwise
   drift value sampled inside the boxes *)
let test_interval_drift_sound () =
  List.iter
    (fun (name, m) ->
      let clip = Model.clip m and theta = Model.theta m in
      let to_intervals (box : Optim.Box.t) =
        Array.init (Optim.Box.dim box) (fun i ->
            Interval.make box.Optim.Box.lo.(i) box.Optim.Box.hi.(i))
      in
      let enc =
        Model.drift_interval m ~x:(to_intervals clip) ~th:(to_intervals theta)
      in
      let rng = Rng.create 13 in
      for k = 1 to n_samples do
        let x = Optim.Box.sample_uniform rng clip in
        let th = Optim.Box.sample_uniform rng theta in
        let f = Model.drift m x th in
        Array.iteri
          (fun i fi ->
            let tol = 1e-9 *. Float.max 1. (Float.abs fi) in
            Alcotest.(check bool)
              (Printf.sprintf "%s drift[%d] inside hull, sample %d" name i k)
              true
              (Interval.lo enc.(i) -. tol <= fi
              && fi <= Interval.hi enc.(i) +. tol))
          f
      done)
    (Registry.all ())

let suites =
  [
    ( "model-consistency",
      [
        Alcotest.test_case "compiled drift = golden closures" `Quick
          test_drift_matches_golden;
        Alcotest.test_case "tape drift = Expr interpreter" `Quick
          test_tape_matches_interpreter;
        Alcotest.test_case "tape jacobian = interpreted derivative" `Quick
          test_jacobian_matches_interpreter;
        Alcotest.test_case "interval drift encloses samples" `Quick
          test_interval_drift_sound;
      ] );
  ]
