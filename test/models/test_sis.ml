open Umf_numerics
open Umf_meanfield
open Umf_models

let p = Sis.default_params

(* closed-form drift, the golden reference for the symbolic model *)
let drift x theta =
  let xi = x.(0) and beta = theta.(0) in
  [|
    (p.Sis.a *. (1. -. xi))
    +. (beta *. xi *. (1. -. xi))
    -. (p.Sis.delta *. xi);
  |]

let test_drift_closed_form () =
  let m = Sis.model p in
  List.iter
    (fun (x, beta) ->
      let from_classes = Population.drift m [| x |] [| beta |] in
      let closed = drift [| x |] [| beta |] in
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "drift at x=%g beta=%g" x beta)
        closed.(0) from_classes.(0))
    [ (0.2, 1.); (0.5, 4.); (0.9, 2.); (0., 1.); (1., 4.) ]

let test_equilibrium_closed_form () =
  List.iter
    (fun beta ->
      let eq = Sis.equilibrium p ~beta in
      let f = drift [| eq |] [| beta |] in
      Alcotest.(check (float 1e-10))
        (Printf.sprintf "drift vanishes at eq (beta=%g)" beta)
        0. f.(0);
      Alcotest.(check bool) "eq in (0,1)" true (eq > 0. && eq < 1.))
    [ 1.; 2.; 3.; 4. ]

let test_equilibrium_matches_ode () =
  let eq_ode =
    Ode.fixed_point
      (fun _t x -> drift x [| 3. |])
      Sis.x0
  in
  Alcotest.(check (float 1e-6)) "ODE equilibrium" (Sis.equilibrium p ~beta:3.)
    eq_ode.(0)

let test_equilibrium_monotone_in_beta () =
  let e1 = Sis.equilibrium p ~beta:1. and e4 = Sis.equilibrium p ~beta:4. in
  Alcotest.(check bool) "higher contact rate, more infection" true (e4 > e1)

let test_imprecise_bounds_contain_equilibria () =
  (* the Pontryagin bounds at a long horizon contain every constant-beta
     equilibrium *)
  let di = Sis.di p in
  let lo =
    (Umf_diffinc.Pontryagin.solve di ~x0:Sis.x0 ~horizon:10. ~sense:`Min (`Coord 0)).value
  in
  let hi =
    (Umf_diffinc.Pontryagin.solve di ~x0:Sis.x0 ~horizon:10. ~sense:`Max (`Coord 0)).value
  in
  List.iter
    (fun beta ->
      let eq = Sis.equilibrium p ~beta in
      Alcotest.(check bool)
        (Printf.sprintf "equilibrium beta=%g inside [%g, %g]" beta lo hi)
        true
        (lo -. 1e-3 <= eq && eq <= hi +. 1e-3))
    [ 1.; 2.; 3.; 4. ]

let test_ssa_converges_to_equilibrium () =
  let m = Sis.model p in
  let avg =
    Ssa.time_average m ~n:2000 ~x0:Sis.x0 ~policy:(Policy.constant [| 2. |])
      ~tmax:50. ~warmup:10.
      ~reward:(fun x -> x.(0))
      (Rng.create 5)
  in
  Alcotest.(check bool)
    (Printf.sprintf "avg %.3f near eq %.3f" avg (Sis.equilibrium p ~beta:2.))
    true
    (Float.abs (avg -. Sis.equilibrium p ~beta:2.) < 0.02)

let suites =
  [
    ( "sis",
      [
        Alcotest.test_case "drift closed form" `Quick test_drift_closed_form;
        Alcotest.test_case "equilibrium closed form" `Quick test_equilibrium_closed_form;
        Alcotest.test_case "equilibrium vs ODE" `Quick test_equilibrium_matches_ode;
        Alcotest.test_case "equilibrium monotone" `Quick test_equilibrium_monotone_in_beta;
        Alcotest.test_case "imprecise bounds contain equilibria" `Quick test_imprecise_bounds_contain_equilibria;
        Alcotest.test_case "ssa stationary mean" `Slow test_ssa_converges_to_equilibrium;
      ] );
  ]
