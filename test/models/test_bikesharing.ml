open Umf_numerics
open Umf_meanfield
open Umf_ctmc
open Umf_models

let p = Bikesharing.default_params

let test_drift_interior () =
  let m = Bikesharing.model p in
  (* interior: f = theta_r - theta_a *)
  let f = Population.drift m [| 0.5 |] [| 1.; 1.2 |] in
  Alcotest.(check (float 1e-12)) "net flow" 0.2 f.(0)

let test_drift_boundaries () =
  let m = Bikesharing.model p in
  let f_empty = Population.drift m [| 0. |] [| 1.4; 0.9 |] in
  Alcotest.(check (float 1e-12)) "no departures when empty" 0.9 f_empty.(0);
  let f_full = Population.drift m [| 1. |] [| 1.4; 0.9 |] in
  Alcotest.(check (float 1e-12)) "no returns when full" (-1.4) f_full.(0)

let test_ictmc_structure () =
  let m = Bikesharing.ictmc p ~capacity:5 in
  Alcotest.(check int) "states" 6 (Imprecise_ctmc.n_states m);
  let g = Imprecise_ctmc.generator_at m [| 1.; 1.2 |] in
  Alcotest.(check (float 1e-12)) "state 0: only returns" 1.2 (Generator.exit_rate g 0);
  Alcotest.(check (float 1e-12)) "state 5: only departures" 1. (Generator.exit_rate g 5);
  Alcotest.(check (float 1e-12)) "interior" 2.2 (Generator.exit_rate g 3)

let test_ictmc_bounds_bracket_constant_theta () =
  let capacity = 8 in
  let m = Bikesharing.ictmc p ~capacity in
  let h = Bikesharing.occupancy_reward ~capacity in
  let horizon = 2. in
  let sweep sense =
    (Imprecise_ctmc.fixed_series ~sense m ~h ~times:[| horizon |]).values.(0)
  in
  let lo = sweep `Lower and hi = sweep `Upper in
  (* exact transient expectation for a few constant parameter choices
     must lie within the imprecise bounds *)
  let x0 = 4 in
  List.iter
    (fun (ta, tr) ->
      let g = Imprecise_ctmc.generator_at m [| ta; tr |] in
      let p0 = Array.init (capacity + 1) (fun i -> if i = x0 then 1. else 0.) in
      let e = Transient.expectation g ~p0 ~t:horizon (fun s -> h.(s)) in
      Alcotest.(check bool)
        (Printf.sprintf "theta (%g, %g) bracketed" ta tr)
        true
        (lo.(x0) -. 2e-3 <= e && e <= hi.(x0) +. 2e-3))
    [ (0.8, 0.9); (1.4, 1.2); (1.1, 1.05); (0.8, 1.2); (1.4, 0.9) ]

let test_empty_probability_monotone_in_horizon () =
  let capacity = 6 in
  let m = Bikesharing.ictmc p ~capacity in
  (* starting full, the upper bound on being empty grows with time *)
  let h = Bikesharing.empty_indicator ~capacity in
  let up t =
    (Imprecise_ctmc.fixed_series ~sense:`Upper m ~h ~times:[| t |]).values.(0).(capacity)
  in
  let u1 = up 1. and u4 = up 4. in
  Alcotest.(check bool) "monotone upper bound" true (u4 >= u1 -. 1e-9);
  Alcotest.(check bool) "bounded by 1" true (u4 <= 1. +. 1e-9)

let test_meanfield_matches_ictmc_large_capacity () =
  (* Theorem 1 for the bike station: with constant theta, the ICTMC
     occupancy expectation at large N approaches the fluid solution *)
  let capacity = 200 in
  let theta = [| 0.9; 1.2 |] in
  let m = Bikesharing.ictmc { arrival = Interval.make 0.9 0.9; return_ = Interval.make 1.2 1.2 } ~capacity in
  let g = Imprecise_ctmc.generator_at m theta in
  (* note: the finite chain takes ~N time to fill since rates are O(1);
     the population model's rates are N-scaled, so compare at time N*t *)
  let t_fluid = 0.5 in
  let p0 = Array.init (capacity + 1) (fun i -> if i = capacity / 2 then 1. else 0.) in
  let e =
    Transient.expectation g ~p0
      ~t:(t_fluid *. float_of_int capacity)
      (fun s -> float_of_int s /. float_of_int capacity)
  in
  let di = Bikesharing.di p in
  let fluid =
    Umf_diffinc.Di.integrate_constant di ~theta ~x0:[| 0.5 |] ~horizon:t_fluid
      ~dt:1e-3
  in
  Alcotest.(check bool)
    (Printf.sprintf "fluid %.3f vs chain %.3f" (Ode.Traj.last fluid).(0) e)
    true
    (Float.abs ((Ode.Traj.last fluid).(0) -. e) < 0.05)

let test_ssa_boundaries_respected () =
  let m = Bikesharing.model p in
  let rng = Rng.create 21 in
  let policy =
    Policy.feedback "adversarial" (fun _t x ->
        (* drain when low, fill when high: stress the boundaries *)
        if x.(0) < 0.3 then [| 1.4; 0.9 |] else [| 0.8; 1.2 |])
  in
  let traj = Ssa.trajectory m ~n:20 ~x0:[| 0.5 |] ~policy ~tmax:50. rng in
  Array.iter
    (fun x ->
      Alcotest.(check bool) "occupancy in [0,1]" true
        (x.(0) >= -1e-9 && x.(0) <= 1. +. 1e-9))
    traj.Ode.Traj.states

let suites =
  [
    ( "bikesharing",
      [
        Alcotest.test_case "interior drift" `Quick test_drift_interior;
        Alcotest.test_case "boundary drift" `Quick test_drift_boundaries;
        Alcotest.test_case "ictmc structure" `Quick test_ictmc_structure;
        Alcotest.test_case "imprecise bounds bracket" `Quick test_ictmc_bounds_bracket_constant_theta;
        Alcotest.test_case "empty probability monotone" `Quick test_empty_probability_monotone_in_horizon;
        Alcotest.test_case "mean field vs chain" `Slow test_meanfield_matches_ictmc_large_capacity;
        Alcotest.test_case "ssa boundaries" `Quick test_ssa_boundaries_respected;
      ] );
  ]
