open Umf_numerics
open Umf_meanfield
open Umf_models

let p = Gps.default_params

let test_equivalent_rate () =
  (* 1/lambda' = 1/a + 1/lambda *)
  Alcotest.(check (float 1e-12)) "a=1, l=1" 0.5
    (Gps.equivalent_poisson_rate ~a:1. ~lambda:1.);
  Alcotest.(check (float 1e-12)) "a=2, l=2" 1.
    (Gps.equivalent_poisson_rate ~a:2. ~lambda:2.);
  (* the mean cycle times agree by construction *)
  let a = 1.7 and lambda = 4.2 in
  let l' = Gps.equivalent_poisson_rate ~a ~lambda in
  Alcotest.(check (float 1e-12)) "mean times equal"
    ((1. /. a) +. (1. /. lambda))
    (1. /. l')

let test_poisson_theta_box () =
  let m = Gps.poisson_model p in
  let box = m.Population.theta in
  (* lambda'1 in [1/(1+1), 1/(1+1/7)] = [0.5, 0.875] *)
  Alcotest.(check (float 1e-9)) "lo1" 0.5 box.Optim.Box.lo.(0);
  Alcotest.(check (float 1e-9)) "hi1" 0.875 box.Optim.Box.hi.(0);
  (* lambda'2 in [1/(1/2+1/2), 1/(1/2+1/3)] = [1, 1.2] *)
  Alcotest.(check (float 1e-9)) "lo2" 1. box.Optim.Box.lo.(1);
  Alcotest.(check (float 1e-9)) "hi2" 1.2 box.Optim.Box.hi.(1)

let test_empty_system_no_service () =
  let m = Gps.poisson_model p in
  let f = Population.drift m [| 0.; 0. |] [| 0.6; 1.1 |] in
  (* only arrivals act on an empty system *)
  Alcotest.(check (float 1e-12)) "dq1 = lambda'1" 0.6 f.(0);
  Alcotest.(check (float 1e-12)) "dq2 = lambda'2" 1.1 f.(1)

let test_full_capacity_split () =
  (* with equal weights and equal backlogs, the machine splits its
     capacity in half: service drift of class i = mu_i c / 2 / gamma_i *)
  let m = Gps.poisson_model p in
  let f = Population.drift m [| 1.; 1. |] [| 0.; 0. |] in
  (* zero arrivals (outside the box, but rates only use theta directly):
     dq_i = -mu_i c phi_i q_i / backlog; backlog = 1 at q = (1,1) *)
  Alcotest.(check (float 1e-9)) "class 1 drain rate"
    (-.(p.Gps.mu1 *. p.Gps.capacity))
    f.(0);
  Alcotest.(check (float 1e-9)) "class 2 drain rate"
    (-.(p.Gps.mu2 *. p.Gps.capacity))
    f.(1)

let test_work_conservation () =
  (* total weighted service equals the full capacity when backlogged:
     sum_i gamma_i * service_i / mu_i = c *)
  let m = Gps.poisson_model p in
  List.iter
    (fun (q1, q2) ->
      let f0 = Population.drift m [| q1; q2 |] [| 0.; 0. |] in
      let used =
        (-.f0.(0) *. p.Gps.gamma1 /. p.Gps.mu1)
        +. (-.f0.(1) *. p.Gps.gamma2 /. p.Gps.mu2)
      in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "capacity used at (%g, %g)" q1 q2)
        p.Gps.capacity used)
    [ (0.5, 0.5); (0.9, 0.1); (0.2, 0.7) ]

let test_poisson_drift_monotone_in_lambda () =
  (* the key structural fact behind "uncertain = imprecise for Poisson":
     each drift coordinate increases with its own lambda and ignores the
     other *)
  let m = Gps.poisson_model p in
  let x = [| 0.3; 0.4 |] in
  let f_lo = Population.drift m x [| 0.5; 1. |] in
  let f_hi = Population.drift m x [| 0.875; 1. |] in
  Alcotest.(check bool) "dq1 increases in lambda1" true (f_hi.(0) > f_lo.(0));
  Alcotest.(check (float 1e-12)) "dq2 unchanged" f_lo.(1) f_hi.(1)

let test_map_conservation () =
  (* per class, q + d + e = 1 is preserved: drift components of q and d
     sum to the negated e-drift; equivalently each transition preserves
     the class total *)
  let m = Gps.map_model p in
  Array.iter
    (fun tr ->
      let ch = tr.Population.change in
      Alcotest.(check (float 1e-12))
        (tr.Population.name ^ " preserves class totals")
        0.
        (Float.abs (ch.(0) +. ch.(1)) *. Float.abs (ch.(2) +. ch.(3))))
    m.Population.transitions

let test_map_activation_flow () =
  let m = Gps.map_model p in
  (* state: q1=0.1 d1=0.2 (e1=0.7), q2=0.1 d2=0.9 (e2=0) *)
  let x = [| 0.1; 0.2; 0.1; 0.9 |] in
  let f = Population.drift m x [| 1.; 2. |] in
  (* dd1 = a1 e1 - lambda1 d1 = 0.7 - 0.2 = 0.5 *)
  Alcotest.(check (float 1e-9)) "dd1" 0.5 f.(1);
  (* dd2 = a2 e2 - lambda2 d2 = 0 - 1.8 *)
  Alcotest.(check (float 1e-9)) "dd2" (-1.8) f.(3)

let test_with_phi1 () =
  let p9 = Gps.with_phi1 p 9. in
  Alcotest.(check (float 1e-12)) "phi1 replaced" 9. p9.Gps.phi1;
  Alcotest.(check (float 1e-12)) "phi2 kept" 1. p9.Gps.phi2;
  (* larger phi1 shifts service towards class 1 *)
  let f1 = Population.drift (Gps.poisson_model p) [| 0.5; 0.5 |] [| 0.; 0. |] in
  let f9 = Population.drift (Gps.poisson_model p9) [| 0.5; 0.5 |] [| 0.; 0. |] in
  Alcotest.(check bool) "class 1 served faster" true (f9.(0) < f1.(0));
  Alcotest.(check bool) "class 2 served slower" true (f9.(1) > f1.(1))

let test_total_queue () =
  Alcotest.(check (float 1e-12)) "poisson" 0.7 (Gps.total_queue `Poisson [| 0.3; 0.4 |]);
  Alcotest.(check (float 1e-12)) "map" 0.7
    (Gps.total_queue `Map [| 0.3; 0.1; 0.4; 0.2 |])

let test_ssa_stays_in_bounds () =
  let m = Gps.map_model p in
  let policy = Policy.constant [| 4.; 2.5 |] in
  let rng = Rng.create 11 in
  let traj = Ssa.trajectory m ~n:200 ~x0:Gps.x0_map ~policy ~tmax:5. rng in
  Array.iter
    (fun x ->
      for i = 0 to 3 do
        Alcotest.(check bool) "component in [0,1]" true
          (x.(i) >= -1e-9 && x.(i) <= 1. +. 1e-9)
      done;
      Alcotest.(check bool) "class totals" true
        (x.(0) +. x.(1) <= 1. +. 1e-9 && x.(2) +. x.(3) <= 1. +. 1e-9))
    traj.Ode.Traj.states

let suites =
  [
    ( "gps",
      [
        Alcotest.test_case "equivalent Poisson rate" `Quick test_equivalent_rate;
        Alcotest.test_case "Poisson theta box" `Quick test_poisson_theta_box;
        Alcotest.test_case "empty system" `Quick test_empty_system_no_service;
        Alcotest.test_case "equal backlog split" `Quick test_full_capacity_split;
        Alcotest.test_case "work conservation" `Quick test_work_conservation;
        Alcotest.test_case "Poisson drift monotone" `Quick test_poisson_drift_monotone_in_lambda;
        Alcotest.test_case "MAP class conservation" `Quick test_map_conservation;
        Alcotest.test_case "MAP activation flow" `Quick test_map_activation_flow;
        Alcotest.test_case "phi1 override" `Quick test_with_phi1;
        Alcotest.test_case "total queue" `Quick test_total_queue;
        Alcotest.test_case "SSA bounds" `Quick test_ssa_stays_in_bounds;
      ] );
  ]
