open Umf_numerics
open Umf_meanfield
open Umf_models

let p1 = { Loadbalance.default_params with Loadbalance.d = 1 }

let p2 = Loadbalance.default_params

let test_fixed_point_closed_form_d1 () =
  (* d = 1: geometric tail rho^k *)
  let fp = Loadbalance.fixed_point p1 ~lambda:0.7 in
  Array.iteri
    (fun i v ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "x%d" (i + 1))
        (0.7 ** float_of_int (i + 1))
        v)
    fp

let test_fixed_point_closed_form_d2 () =
  (* d = 2: doubly exponential rho^(2^k - 1) *)
  let fp = Loadbalance.fixed_point p2 ~lambda:0.7 in
  Alcotest.(check (float 1e-12)) "x1" 0.7 fp.(0);
  Alcotest.(check (float 1e-12)) "x2" (0.7 ** 3.) fp.(1);
  Alcotest.(check (float 1e-12)) "x3" (0.7 ** 7.) fp.(2)

let test_drift_vanishes_at_fixed_point () =
  (* the closed form is the fixed point of the untruncated system: all
     coordinates except the last are exact; the last one carries the
     truncation error lambda * x_{kmax}^d *)
  List.iter
    (fun p ->
      let m = Loadbalance.model p in
      let fp = Loadbalance.fixed_point p ~lambda:0.7 in
      let f = Population.drift m fp [| 0.7 |] in
      let kk = p.Loadbalance.k_max in
      for i = 0 to kk - 2 do
        Alcotest.(check (float 1e-12))
          (Printf.sprintf "f%d exactly 0 (d=%d)" (i + 1) p.Loadbalance.d)
          0. f.(i)
      done;
      let truncation =
        0.7 *. (fp.(kk - 1) ** float_of_int p.Loadbalance.d)
      in
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "last coordinate carries truncation (d=%d)"
           p.Loadbalance.d)
        (-.truncation) f.(kk - 1))
    [ p1; p2 ]

let test_ode_converges_to_fixed_point () =
  let di = Loadbalance.di p2 in
  let eq =
    Ode.integrate_to
      (fun _t x -> di.Umf_diffinc.Di.drift x [| 0.7 |])
      ~t0:0. ~y0:(Loadbalance.x0_empty p2) ~t1:200. ~dt:0.01
  in
  Alcotest.(check bool) "ODE reaches the closed form" true
    (Vec.approx_equal ~tol:1e-6 (Loadbalance.fixed_point p2 ~lambda:0.7) eq)

let test_power_of_two_wins () =
  (* the classic result: JSQ(2) has a far shorter tail than random *)
  let q d =
    let p = { p2 with Loadbalance.d } in
    Loadbalance.mean_queue (Loadbalance.fixed_point p ~lambda:0.9)
  in
  Alcotest.(check bool)
    (Printf.sprintf "mean queue d=2 (%.2f) << d=1 (%.2f)" (q 2) (q 1))
    true
    (* at k_max = 8 the geometric d=1 tail is itself truncated, which
       understates the d=1 queue; 0.5 is still a decisive margin *)
    (q 2 < 0.5 *. q 1)

let test_ssa_preserves_tail_monotonicity () =
  let m = Loadbalance.model p2 in
  let rng = Rng.create 5 in
  let traj =
    Ssa.trajectory m ~n:200 ~x0:(Loadbalance.x0_empty p2)
      ~policy:(Policy.constant [| 0.8 |]) ~tmax:10. rng
  in
  Array.iter
    (fun x ->
      Alcotest.(check bool) "tail monotone" true (Loadbalance.tail_monotone x))
    traj.Ode.Traj.states

let test_ssa_matches_fluid () =
  let m = Loadbalance.model p2 in
  let avg =
    Ssa.time_average m ~n:3000 ~x0:(Loadbalance.x0_empty p2)
      ~policy:(Policy.constant [| 0.8 |]) ~tmax:80. ~warmup:30.
      ~reward:Loadbalance.mean_queue (Rng.create 7)
  in
  let fluid = Loadbalance.mean_queue (Loadbalance.fixed_point p2 ~lambda:0.8) in
  Alcotest.(check bool)
    (Printf.sprintf "SSA %.3f near fluid %.3f" avg fluid)
    true
    (Float.abs (avg -. fluid) < 0.05)

let test_imprecise_bounds_bracket_equilibria () =
  let di = Loadbalance.di p2 in
  (* long-horizon bounds on x1 contain the constant-lambda equilibria *)
  let lo =
    (Umf_diffinc.Pontryagin.solve ~steps:300 di ~x0:(Loadbalance.x0_empty p2)
       ~horizon:40. ~sense:`Min (`Coord 0))
      .Umf_diffinc.Pontryagin.value
  in
  let hi =
    (Umf_diffinc.Pontryagin.solve ~steps:300 di ~x0:(Loadbalance.x0_empty p2)
       ~horizon:40. ~sense:`Max (`Coord 0))
      .Umf_diffinc.Pontryagin.value
  in
  List.iter
    (fun l ->
      let fp = Loadbalance.fixed_point p2 ~lambda:l in
      (* the T=40 transient from empty is still ~5e-3 below the
         heaviest-traffic equilibrium; allow that residual *)
      Alcotest.(check bool)
        (Printf.sprintf "x1 equilibrium for lambda=%g inside [%.3f, %.3f]" l lo hi)
        true
        (lo -. 1e-3 <= fp.(0) && fp.(0) <= hi +. 6e-3))
    [ 0.5; 0.7; 0.9 ]

let test_validation () =
  Alcotest.check_raises "lambda >= 1"
    (Invalid_argument "Loadbalance.fixed_point: need lambda < 1") (fun () ->
      ignore (Loadbalance.fixed_point p2 ~lambda:1.))

let suites =
  [
    ( "loadbalance",
      [
        Alcotest.test_case "closed form d=1" `Quick test_fixed_point_closed_form_d1;
        Alcotest.test_case "closed form d=2" `Quick test_fixed_point_closed_form_d2;
        Alcotest.test_case "drift vanishes at fp" `Quick test_drift_vanishes_at_fixed_point;
        Alcotest.test_case "ODE converges to fp" `Quick test_ode_converges_to_fixed_point;
        Alcotest.test_case "power of two choices" `Quick test_power_of_two_wins;
        Alcotest.test_case "SSA tail monotone" `Quick test_ssa_preserves_tail_monotonicity;
        Alcotest.test_case "SSA matches fluid" `Slow test_ssa_matches_fluid;
        Alcotest.test_case "imprecise bounds bracket" `Slow test_imprecise_bounds_bracket_equilibria;
        Alcotest.test_case "validation" `Quick test_validation;
      ] );
  ]
