open Umf_numerics
open Umf_meanfield
open Umf_models

let p = Cholera.default_params

let test_drift_structure () =
  let m = Cholera.model p in
  (* at x0 = (0.9, 0.1, 0): no water infection yet, shedding positive *)
  let f = Population.drift m Cholera.x0 [| 2. |] in
  (* dS = -a S + rho (1 - S - I) = -0.009 + 0.2*0 = -0.009 *)
  Alcotest.(check (float 1e-12)) "dS" (-.(p.Cholera.a *. 0.9)) f.(0);
  (* dW = xi I - delta W = 0.1 *)
  Alcotest.(check (float 1e-12)) "dW" (p.Cholera.xi *. 0.1) f.(2)

let test_water_drives_infection () =
  let m = Cholera.model p in
  let x = [| 0.8; 0.1; 0.5 |] in
  let f_lo = Population.drift m x [| 0.5 |] in
  let f_hi = Population.drift m x [| 4. |] in
  Alcotest.(check bool) "more rainfall, faster infection" true
    (f_hi.(1) > f_lo.(1));
  Alcotest.(check (float 1e-9)) "difference = dtheta * S * W"
    (3.5 *. 0.8 *. 0.5)
    (f_hi.(1) -. f_lo.(1))

let test_symbolic_jacobian_vs_fd () =
  let s = Cholera.make p in
  let x = [| 0.7; 0.2; 0.4 |] and th = [| 2. |] in
  let sym = Model.jacobian s x th in
  let m = Cholera.model p in
  let fd = Diff.jacobian (fun y -> Population.drift m y th) x in
  Alcotest.(check bool) "symbolic = FD" true (Mat.approx_equal ~tol:1e-5 sym fd)

let test_affine_in_theta () =
  Alcotest.(check bool) "affine" true
    (Model.affine_in_theta (Cholera.make p))

let test_transition_structure () =
  (* epidemiological transitions never touch W; reservoir transitions
     never touch the population; infection conserves S + I *)
  let m = Cholera.model p in
  Array.iter
    (fun tr ->
      let ch = tr.Population.change in
      match tr.Population.name with
      | "infection" ->
          Alcotest.(check (float 1e-12)) "infection conserves S+I" 0.
            (ch.(0) +. ch.(1));
          Alcotest.(check (float 1e-12)) "infection leaves W" 0. ch.(2)
      | "recovery" | "immunity-loss" ->
          Alcotest.(check (float 1e-12)) (tr.Population.name ^ " leaves W") 0.
            ch.(2)
      | "shedding" | "decay" ->
          Alcotest.(check (float 1e-12)) (tr.Population.name ^ " leaves S") 0.
            ch.(0);
          Alcotest.(check (float 1e-12)) (tr.Population.name ^ " leaves I") 0.
            ch.(1)
      | other -> Alcotest.failf "unexpected transition %s" other)
    m.Population.transitions

let test_endemic_equilibrium () =
  (* with constant theta, the fluid settles to an endemic equilibrium
     with consistent W = xi I / delta *)
  let di = Cholera.di p in
  let eq =
    Ode.fixed_point ~max_time:2000.
      (fun _t x -> di.Umf_diffinc.Di.drift x [| 2. |])
      Cholera.x0
  in
  Alcotest.(check (float 1e-6)) "W = xi I / delta"
    (p.Cholera.xi *. eq.(1) /. p.Cholera.delta)
    eq.(2);
  Alcotest.(check bool) "endemic (I > 0)" true (eq.(1) > 1e-3)

let test_pontryagin_bounds_3d () =
  let di = Cholera.di p in
  let lo =
    (Umf_diffinc.Pontryagin.solve ~steps:200 di ~x0:Cholera.x0 ~horizon:4.
       ~sense:`Min (`Coord 1))
      .Umf_diffinc.Pontryagin.value
  in
  let hi =
    (Umf_diffinc.Pontryagin.solve ~steps:200 di ~x0:Cholera.x0 ~horizon:4.
       ~sense:`Max (`Coord 1))
      .Umf_diffinc.Pontryagin.value
  in
  Alcotest.(check bool) "ordered" true (lo <= hi);
  (* rainfall variation matters: the bounds are separated *)
  Alcotest.(check bool)
    (Printf.sprintf "non-trivial gap [%.4f, %.4f]" lo hi)
    true
    (hi -. lo > 0.01);
  (* constant-theta envelope inside *)
  let u_lo, u_hi =
    Umf_diffinc.Uncertain.extremal_coord ~grid:5 di ~x0:Cholera.x0 ~coord:1 ~horizon:4.
  in
  Alcotest.(check bool) "uncertain within imprecise" true
    (lo <= u_lo +. 1e-4 && u_hi <= hi +. 1e-4)

let test_certified_hull_3d () =
  let s = Cholera.make p in
  let h =
    Umf_diffinc.Certified.hull_bounds ~clip:Cholera.state_clip s ~x0:Cholera.x0
      ~horizon:2. ~dt:0.01
  in
  (* sound w.r.t. a few constant-theta solutions *)
  let di = Cholera.di p in
  List.iter
    (fun th ->
      let traj =
        Umf_diffinc.Di.integrate_constant di ~theta:[| th |] ~x0:Cholera.x0
          ~horizon:2. ~dt:0.01
      in
      List.iter
        (fun t ->
          Alcotest.(check bool)
            (Printf.sprintf "theta=%g inside hull at t=%g" th t)
            true
            (Umf_diffinc.Hull.contains ~tol:1e-4 h t (Ode.Traj.at traj t)))
        [ 0.5; 1.; 2. ])
    [ 0.5; 2.; 4. ]

let test_ssa_runs () =
  let m = Cholera.model p in
  let rng = Rng.create 3 in
  let x =
    Ssa.final m ~n:500 ~x0:Cholera.x0 ~policy:(Policy.constant [| 2. |])
      ~tmax:5. rng
  in
  Alcotest.(check bool) "valid state" true
    (x.(0) >= 0. && x.(1) >= 0. && x.(2) >= 0. && x.(0) +. x.(1) <= 1. +. 1e-9)

let suites =
  [
    ( "cholera",
      [
        Alcotest.test_case "drift structure" `Quick test_drift_structure;
        Alcotest.test_case "water drives infection" `Quick test_water_drives_infection;
        Alcotest.test_case "symbolic jacobian vs FD" `Quick test_symbolic_jacobian_vs_fd;
        Alcotest.test_case "affine in theta" `Quick test_affine_in_theta;
        Alcotest.test_case "transition structure" `Quick test_transition_structure;
        Alcotest.test_case "endemic equilibrium" `Quick test_endemic_equilibrium;
        Alcotest.test_case "3-D Pontryagin bounds" `Quick test_pontryagin_bounds_3d;
        Alcotest.test_case "3-D certified hull" `Quick test_certified_hull_3d;
        Alcotest.test_case "SSA runs" `Quick test_ssa_runs;
      ] );
  ]
