let () =
  Alcotest.run "umf_integration"
    (Test_sir_paper.suites @ Test_gps_paper.suites @ Test_analysis.suites @ Test_finite_n.suites)
