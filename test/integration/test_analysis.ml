(* The high-level Analysis API wiring. *)
open Umf

let p = Sir.default_params

let model = Sir.model p

let times = [| 0.; 1.; 2. |]

let test_transient_bounds_imprecise () =
  let bounds =
    Analysis.transient_bounds ~steps:150 model ~x0:Sir.x0 ~coord:1 ~times
  in
  let lo0, hi0 = bounds.(0) in
  Alcotest.(check (float 1e-12)) "t=0 is x0 (lo)" 0.3 lo0;
  Alcotest.(check (float 1e-12)) "t=0 is x0 (hi)" 0.3 hi0;
  Array.iter (fun (lo, hi) -> Alcotest.(check bool) "ordered" true (lo <= hi)) bounds

let test_transient_bounds_scenarios_nested () =
  let imprecise =
    Analysis.transient_bounds ~steps:150 model ~x0:Sir.x0 ~coord:1 ~times
  in
  let uncertain =
    Analysis.transient_bounds ~scenario:(Analysis.Uncertain 9) model ~x0:Sir.x0
      ~coord:1 ~times
  in
  Array.iteri
    (fun i (ulo, uhi) ->
      let ilo, ihi = imprecise.(i) in
      Alcotest.(check bool) "uncertain inside imprecise" true
        (ilo <= ulo +. 1e-4 && uhi <= ihi +. 1e-4))
    uncertain

let test_hull_bounds_wrapper () =
  let clip = Optim.Box.make [| 0.; 0. |] [| 1.; 1. |] in
  let h = Analysis.hull_bounds ~clip model ~x0:Sir.x0 ~horizon:2. in
  Alcotest.(check bool) "hull contains x0 at 0" true (Hull.contains h 0. Sir.x0)

let test_steady_state_region () =
  let b = Analysis.steady_state_region_2d ~x_start:Sir.x0 model in
  Alcotest.(check bool) "non-trivial region" true (Birkhoff.area b > 0.01)

let test_stationary_cloud_and_inclusion () =
  let b = Analysis.steady_state_region_2d ~x_start:Sir.x0 model in
  let cloud =
    Analysis.stationary_cloud model ~n:500 ~x0:Sir.x0
      ~policy:(Sir.policy_theta1 p) ~warmup:10. ~horizon:40. ~samples:50 ~seed:1
  in
  Alcotest.(check int) "sample count" 50 (Array.length cloud);
  let frac = Analysis.inclusion_fraction ~tol:3e-3 b cloud in
  Alcotest.(check bool) "fraction in [0,1]" true (frac >= 0. && frac <= 1.);
  Alcotest.(check bool) "mostly inside" true (frac > 0.6)

let test_mean_exceedance_semantics () =
  let b = Analysis.steady_state_region_2d ~x_start:Sir.x0 model in
  (* interior points contribute zero exceedance *)
  let cx, cy = Geometry.centroid b.Birkhoff.polygon in
  Alcotest.(check (float 1e-12)) "interior exceedance" 0.
    (Analysis.mean_exceedance b [| [| cx; cy |] |]);
  (* a point pushed distance d outside contributes ~d *)
  let (_, _), (xmax, _) = Geometry.bounding_box b.Birkhoff.polygon in
  let outside = [| xmax +. 0.1; cy |] in
  let e = Analysis.mean_exceedance b [| outside |] in
  Alcotest.(check bool)
    (Printf.sprintf "outside exceedance %.4f near 0.1" e)
    true
    (e > 0.05 && e < 0.2);
  (* averaging over one inside and one outside point halves it *)
  let half = Analysis.mean_exceedance b [| [| cx; cy |]; outside |] in
  Alcotest.(check (float 1e-9)) "mean over samples" (e /. 2.) half

let test_safety_on_population_model () =
  (* end-to-end: Safety over a Di built from the population model *)
  let di = Di.of_population model in
  match
    Safety.verify ~steps:150 ~check_points:6 di ~x0:Sir.x0 ~horizon:4.
      [ Safety.le ~coord:1 ~dim:2 0.9 ]
  with
  | Safety.Safe margin -> Alcotest.(check bool) "trivially safe" true (margin > 0.5)
  | Safety.Violated _ -> Alcotest.fail "x_I <= 0.9 cannot be violated"

let test_stationary_cloud_validation () =
  Alcotest.check_raises "warmup >= horizon"
    (Invalid_argument "Analysis.stationary_cloud: warmup >= horizon") (fun () ->
      ignore
        (Analysis.stationary_cloud model ~n:10 ~x0:Sir.x0
           ~policy:(Sir.policy_theta1 p) ~warmup:5. ~horizon:5. ~samples:10
           ~seed:1))

let suites =
  [
    ( "analysis",
      [
        Alcotest.test_case "imprecise transient bounds" `Quick test_transient_bounds_imprecise;
        Alcotest.test_case "scenario nesting" `Quick test_transient_bounds_scenarios_nested;
        Alcotest.test_case "hull wrapper" `Quick test_hull_bounds_wrapper;
        Alcotest.test_case "steady-state region" `Quick test_steady_state_region;
        Alcotest.test_case "stationary cloud" `Slow test_stationary_cloud_and_inclusion;
        Alcotest.test_case "mean exceedance semantics" `Quick test_mean_exceedance_semantics;
        Alcotest.test_case "safety end-to-end" `Quick test_safety_on_population_model;
        Alcotest.test_case "validation" `Quick test_stationary_cloud_validation;
      ] );
  ]
