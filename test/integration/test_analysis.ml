(* The high-level Analysis API wiring: the spec record consumed by all
   entry points and the named result records. *)
open Umf

let p = Sir.default_params

let model = Sir.make p

let times = [| 0.; 1.; 2. |]

let test_spec_validation () =
  Alcotest.check_raises "horizon <= 0"
    (Invalid_argument "Analysis.spec: need horizon > 0") (fun () ->
      ignore (Analysis.spec ~horizon:0. model));
  Alcotest.check_raises "steps < 1"
    (Invalid_argument "Analysis.spec: need steps >= 1") (fun () ->
      ignore (Analysis.spec ~steps:0 model));
  Alcotest.check_raises "grid < 2"
    (Invalid_argument "Analysis.spec: need grid >= 2") (fun () ->
      ignore (Analysis.spec ~scenario:(Analysis.Uncertain 1) model))

let test_spec_theta_override () =
  let box = Optim.Box.make [| 2. |] [| 3. |] in
  let s = Analysis.spec ~theta:box model in
  let di = Analysis.di_of_spec s in
  Alcotest.(check bool) "theta box overridden" true (di.Di.theta == box);
  let s0 = Analysis.spec model in
  let di0 = Analysis.di_of_spec s0 in
  Alcotest.(check (float 1e-12))
    "default box from model" p.Sir.theta_min
    di0.Di.theta.Optim.Box.lo.(0)

let test_transient_bounds_imprecise () =
  let s = Analysis.spec ~steps:150 model in
  let b = Analysis.transient_bounds ~times s ~x0:Sir.x0 ~coord:1 in
  Alcotest.(check int) "coord recorded" 1 b.Analysis.coord;
  Alcotest.(check (float 1e-12)) "t=0 is x0 (lo)" 0.3 b.Analysis.lower.(0);
  Alcotest.(check (float 1e-12)) "t=0 is x0 (hi)" 0.3 b.Analysis.upper.(0);
  Array.iteri
    (fun i lo ->
      Alcotest.(check bool) "ordered" true (lo <= b.Analysis.upper.(i)))
    b.Analysis.lower

let test_transient_bounds_default_times () =
  let s = Analysis.spec ~steps:60 ~horizon:2. model in
  let b = Analysis.transient_bounds s ~x0:Sir.x0 ~coord:1 in
  Alcotest.(check int) "11 default sample times" 11
    (Array.length b.Analysis.times);
  Alcotest.(check (float 1e-12)) "last time is horizon" 2.
    b.Analysis.times.(10)

let test_transient_bounds_scenarios_nested () =
  let s = Analysis.spec ~steps:150 model in
  let imprecise = Analysis.transient_bounds ~times s ~x0:Sir.x0 ~coord:1 in
  let su = Analysis.spec ~scenario:(Analysis.Uncertain 9) model in
  let uncertain = Analysis.transient_bounds ~times su ~x0:Sir.x0 ~coord:1 in
  Array.iteri
    (fun i ulo ->
      let uhi = uncertain.Analysis.upper.(i) in
      let ilo = imprecise.Analysis.lower.(i)
      and ihi = imprecise.Analysis.upper.(i) in
      Alcotest.(check bool) "uncertain inside imprecise" true
        (ilo <= ulo +. 1e-4 && uhi <= ihi +. 1e-4))
    uncertain.Analysis.lower

let test_hull_bounds_wrapper () =
  let clip = Optim.Box.make [| 0.; 0. |] [| 1.; 1. |] in
  let s = Analysis.spec ~horizon:2. model in
  let h = Analysis.hull_bounds ~clip s ~x0:Sir.x0 in
  Alcotest.(check bool) "hull contains x0 at 0" true (Hull.contains h 0. Sir.x0)

let test_steady_state_region () =
  let s = Analysis.spec model in
  let r = Analysis.steady_state_region_2d ~x_start:Sir.x0 s in
  Alcotest.(check bool) "non-trivial region" true (r.Analysis.area > 0.01);
  Alcotest.(check (float 1e-12))
    "area matches birkhoff"
    (Birkhoff.area r.Analysis.birkhoff)
    r.Analysis.area

let test_stationary_cloud_and_inclusion () =
  let s = Analysis.spec ~horizon:40. model in
  let r = Analysis.steady_state_region_2d ~x_start:Sir.x0 s in
  let cloud =
    Analysis.stationary_cloud s ~n:500 ~x0:Sir.x0
      ~policy:(Sir.policy_theta1 p) ~warmup:10. ~samples:50 ~seed:1
  in
  Alcotest.(check int) "sample count" 50 (Array.length cloud.Analysis.states);
  Alcotest.(check int) "time per sample" 50 (Array.length cloud.Analysis.times);
  let incl =
    Analysis.inclusion_fraction ~tol:3e-3 s r cloud.Analysis.states
  in
  Alcotest.(check int) "total recorded" 50 incl.Analysis.total;
  Alcotest.(check (float 1e-12))
    "fraction consistent"
    (float_of_int incl.Analysis.inside /. 50.)
    incl.Analysis.fraction;
  Alcotest.(check bool) "strict <= slack fraction" true
    (incl.Analysis.strict <= incl.Analysis.fraction);
  Alcotest.(check bool) "mostly inside" true (incl.Analysis.fraction > 0.6)

let test_mean_exceedance_semantics () =
  let s = Analysis.spec model in
  let r = Analysis.steady_state_region_2d ~x_start:Sir.x0 s in
  let b = r.Analysis.birkhoff in
  (* interior points contribute zero exceedance *)
  let cx, cy = Geometry.centroid b.Birkhoff.polygon in
  let interior = Analysis.mean_exceedance s r [| [| cx; cy |] |] in
  Alcotest.(check (float 1e-12)) "interior exceedance" 0. interior.Analysis.mean;
  Alcotest.(check (float 1e-12)) "interior worst" 0. interior.Analysis.worst;
  (* a point pushed distance d outside contributes ~d *)
  let (_, _), (xmax, _) = Geometry.bounding_box b.Birkhoff.polygon in
  let outside = [| xmax +. 0.1; cy |] in
  let e = (Analysis.mean_exceedance s r [| outside |]).Analysis.mean in
  Alcotest.(check bool)
    (Printf.sprintf "outside exceedance %.4f near 0.1" e)
    true
    (e > 0.05 && e < 0.2);
  (* averaging over one inside and one outside point halves the mean
     but keeps the worst *)
  let half = Analysis.mean_exceedance s r [| [| cx; cy |]; outside |] in
  Alcotest.(check (float 1e-9)) "mean over samples" (e /. 2.) half.Analysis.mean;
  Alcotest.(check (float 1e-9)) "worst over samples" e half.Analysis.worst

let test_safety_on_population_model () =
  (* end-to-end: Safety over a Di derived from the model *)
  let di = Di.of_model model in
  match
    Safety.verify ~steps:150 ~check_points:6 di ~x0:Sir.x0 ~horizon:4.
      [ Safety.le ~coord:1 ~dim:2 0.9 ]
  with
  | Safety.Safe margin -> Alcotest.(check bool) "trivially safe" true (margin > 0.5)
  | Safety.Violated _ -> Alcotest.fail "x_I <= 0.9 cannot be violated"

let test_stationary_cloud_validation () =
  let s = Analysis.spec ~horizon:5. model in
  Alcotest.check_raises "warmup >= horizon"
    (Invalid_argument "Analysis.stationary_cloud: warmup >= horizon") (fun () ->
      ignore
        (Analysis.stationary_cloud s ~n:10 ~x0:Sir.x0
           ~policy:(Sir.policy_theta1 p) ~warmup:5. ~samples:10 ~seed:1))

(* observability: enabling a spec's obs context must not change any
   numeric result, and must populate the metrics summary *)
let test_obs_metrics_populated () =
  let agg = Obs.Agg.create () in
  let s_obs =
    Analysis.spec ~steps:150 ~obs:(Obs.make ~agg:agg ()) model
  in
  let s_off = Analysis.spec ~steps:150 model in
  let observed = Analysis.transient_bounds ~times s_obs ~x0:Sir.x0 ~coord:1 in
  let plain = Analysis.transient_bounds ~times s_off ~x0:Sir.x0 ~coord:1 in
  Array.iteri
    (fun i lo ->
      Alcotest.(check (float 0.)) "obs on/off lower identical"
        plain.Analysis.lower.(i) lo;
      Alcotest.(check (float 0.)) "obs on/off upper identical"
        plain.Analysis.upper.(i)
        observed.Analysis.upper.(i))
    observed.Analysis.lower;
  Alcotest.(check bool) "off leaves metrics empty" true
    (plain.Analysis.metrics = Analysis.no_metrics);
  let m = observed.Analysis.metrics in
  Alcotest.(check bool) "sweep counter recorded" true
    (match Analysis.metric m "pontryagin.sweeps" with
    | Some v -> v > 0.
    | None -> false);
  Alcotest.(check bool) "solve span recorded" true
    (List.mem_assoc "pontryagin.solve" m.Analysis.spans);
  (* the caller's own sink saw the same probes *)
  Alcotest.(check bool) "caller agg fed too" true
    (Obs.Agg.counter agg "pontryagin.sweeps" > 0.)

let suites =
  [
    ( "analysis",
      [
        Alcotest.test_case "spec validation" `Quick test_spec_validation;
        Alcotest.test_case "spec theta override" `Quick test_spec_theta_override;
        Alcotest.test_case "imprecise transient bounds" `Quick test_transient_bounds_imprecise;
        Alcotest.test_case "default sample times" `Quick test_transient_bounds_default_times;
        Alcotest.test_case "scenario nesting" `Quick test_transient_bounds_scenarios_nested;
        Alcotest.test_case "hull wrapper" `Quick test_hull_bounds_wrapper;
        Alcotest.test_case "steady-state region" `Quick test_steady_state_region;
        Alcotest.test_case "stationary cloud" `Slow test_stationary_cloud_and_inclusion;
        Alcotest.test_case "mean exceedance semantics" `Quick test_mean_exceedance_semantics;
        Alcotest.test_case "safety end-to-end" `Quick test_safety_on_population_model;
        Alcotest.test_case "validation" `Quick test_stationary_cloud_validation;
        Alcotest.test_case "obs metrics populated" `Quick test_obs_metrics_populated;
      ] );
  ]
