(* End-to-end checks of the paper's Sec. VI claims on the GPS model. *)
open Umf

let p = Gps.default_params

let test_poisson_uncertain_equals_imprecise () =
  (* Fig. 7(a): for Poisson arrivals, the imprecise and uncertain
     extremes coincide (the drift is monotone in its own lambda only) *)
  let di = Gps.poisson_di p in
  List.iter
    (fun t ->
      List.iter
        (fun coord ->
          let u_lo, u_hi =
            Uncertain.extremal_coord ~grid:5 di ~x0:Gps.x0_poisson ~coord ~horizon:t
          in
          let i_lo =
            (Pontryagin.solve ~steps:250 di ~x0:Gps.x0_poisson ~horizon:t
               ~sense:`Min (`Coord coord))
              .value
          in
          let i_hi =
            (Pontryagin.solve ~steps:250 di ~x0:Gps.x0_poisson ~horizon:t
               ~sense:`Max (`Coord coord))
              .value
          in
          Alcotest.(check (float 2e-3))
            (Printf.sprintf "Q%d upper coincide at t=%g" (coord + 1) t)
            u_hi i_hi;
          Alcotest.(check (float 2e-3))
            (Printf.sprintf "Q%d lower coincide at t=%g" (coord + 1) t)
            u_lo i_lo)
        [ 0; 1 ])
    [ 1.; 3.; 5. ]

let test_map_imprecise_strictly_larger () =
  (* Fig. 7(b): for MAP arrivals, varying lambda in time congests the
     queue well beyond any constant lambda (the delay effect) *)
  let di = Gps.map_di p in
  List.iter
    (fun t ->
      let _, u_hi = Uncertain.extremal_coord ~grid:5 di ~x0:Gps.x0_map ~coord:0 ~horizon:t in
      let i_hi =
        (Pontryagin.solve ~steps:250 di ~x0:Gps.x0_map ~horizon:t ~sense:`Max
           (`Coord 0))
          .value
      in
      Alcotest.(check bool)
        (Printf.sprintf "Q1 imprecise %.3f > 1.5x uncertain %.3f at t=%g" i_hi u_hi t)
        true
        (i_hi > 1.5 *. u_hi))
    [ 1.; 2. ]

let test_map_and_poisson_cycle_times_match () =
  (* the lambda' construction equates mean time between jobs *)
  let box_p = (Gps.poisson_model p).Population.theta in
  let l1' = box_p.Optim.Box.hi.(0) in
  Alcotest.(check (float 1e-9)) "mean cycle matched"
    ((1. /. p.Gps.a1) +. (1. /. Interval.hi p.Gps.lambda1))
    (1. /. l1')

let test_ssa_within_pontryagin_bounds () =
  (* finite-N simulation under an adversarial feedback policy stays
     within the imprecise fluid bounds up to O(1/sqrt N) noise *)
  let model = Gps.poisson_model p in
  let di = Gps.poisson_di p in
  let horizon = 3. in
  let i_lo =
    (Pontryagin.solve ~steps:250 di ~x0:Gps.x0_poisson ~horizon ~sense:`Min (`Coord 0)).value
  in
  let i_hi =
    (Pontryagin.solve ~steps:250 di ~x0:Gps.x0_poisson ~horizon ~sense:`Max (`Coord 0)).value
  in
  let box = model.Population.theta in
  let policy =
    Policy.feedback "adversarial" (fun _t x ->
        if x.(0) < 0.15 then box.Optim.Box.hi else box.Optim.Box.lo)
  in
  let rng = Rng.create 3 in
  for _ = 1 to 10 do
    let x = Ssa.final model ~n:5000 ~x0:Gps.x0_poisson ~policy ~tmax:horizon rng in
    Alcotest.(check bool)
      (Printf.sprintf "Q1 = %.4f within [%.4f, %.4f]" x.(0) i_lo i_hi)
      true
      (x.(0) >= i_lo -. 0.03 && x.(0) <= i_hi +. 0.03)
  done

let test_robust_tuning_improves_over_equal_weights () =
  (* Sec. VI-C: tuning phi1 reduces the worst-case total queue length
     substantially relative to phi1 = phi2 = 1 *)
  let qbar phi1 =
    let di = Gps.map_di (Gps.with_phi1 p phi1) in
    (Pontryagin.solve ~steps:200 di ~x0:Gps.x0_map ~horizon:10. ~sense:`Max
       (`Linear [| 1.; 0.; 1.; 0. |]))
      .value
  in
  let base = qbar 1. and tuned = qbar 9. in
  Alcotest.(check bool)
    (Printf.sprintf "tuned %.3f < base %.3f" tuned base)
    true
    (tuned < base *. 0.85)

let suites =
  [
    ( "gps-paper",
      [
        Alcotest.test_case "Fig 7a Poisson coincide" `Quick test_poisson_uncertain_equals_imprecise;
        Alcotest.test_case "Fig 7b MAP strictly larger" `Quick test_map_imprecise_strictly_larger;
        Alcotest.test_case "cycle-time equivalence" `Quick test_map_and_poisson_cycle_times_match;
        Alcotest.test_case "SSA within fluid bounds" `Slow test_ssa_within_pontryagin_bounds;
        Alcotest.test_case "robust tuning helps" `Quick test_robust_tuning_improves_over_equal_weights;
      ] );
  ]
