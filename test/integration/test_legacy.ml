(* Dedicated compatibility test for the deprecated Analysis.Legacy
   wrappers — the only sanctioned Legacy caller in the repository.  The
   wrappers are thin aliases over the spec API and must keep producing
   the same numbers as the spec-based entry points until removal. *)
open Umf

let p = Sir.default_params

let model = Sir.model p

let times = [| 0.; 1.; 2. |]

[@@@ocaml.warning "-3"]

let test_legacy_wrappers_agree () =
  let s = Analysis.spec ~steps:150 model in
  let fresh = Analysis.transient_bounds ~times s ~x0:Sir.x0 ~coord:1 in
  let legacy =
    Analysis.Legacy.transient_bounds ~steps:150 model ~x0:Sir.x0 ~coord:1
      ~times
  in
  Array.iteri
    (fun i (lo, hi) ->
      Alcotest.(check (float 0.)) "legacy lower identical" fresh.Analysis.lower.(i) lo;
      Alcotest.(check (float 0.)) "legacy upper identical" fresh.Analysis.upper.(i) hi)
    legacy;
  let b = Analysis.Legacy.steady_state_region_2d ~x_start:Sir.x0 model in
  let r = Analysis.steady_state_region_2d ~x_start:Sir.x0 (Analysis.spec model) in
  Alcotest.(check (float 0.)) "legacy region identical"
    (Birkhoff.area r.Analysis.birkhoff) (Birkhoff.area b);
  let sc = Analysis.spec ~horizon:40. model in
  let cloud =
    Analysis.stationary_cloud sc ~n:200 ~x0:Sir.x0
      ~policy:(Sir.policy_theta1 p) ~warmup:10. ~samples:20 ~seed:1
  in
  let legacy_cloud =
    Analysis.Legacy.stationary_cloud model ~n:200 ~x0:Sir.x0
      ~policy:(Sir.policy_theta1 p) ~warmup:10. ~horizon:40. ~samples:20
      ~seed:1
  in
  Array.iteri
    (fun i x ->
      Alcotest.(check bool) "legacy cloud identical" true
        (x = cloud.Analysis.states.(i)))
    legacy_cloud;
  let incl = Analysis.inclusion_fraction ~tol:3e-3 sc r cloud.Analysis.states in
  Alcotest.(check (float 0.)) "legacy inclusion identical"
    incl.Analysis.fraction
    (Analysis.Legacy.inclusion_fraction ~tol:3e-3 b legacy_cloud);
  let exc = Analysis.mean_exceedance sc r cloud.Analysis.states in
  Alcotest.(check (float 0.)) "legacy exceedance identical"
    exc.Analysis.mean
    (Analysis.Legacy.mean_exceedance b legacy_cloud)

let test_legacy_hull_agrees () =
  let clip = Optim.Box.make [| 0.; 0. |] [| 1.; 1. |] in
  let s = Analysis.spec ~horizon:2. model in
  let fresh = Analysis.hull_bounds ~clip s ~x0:Sir.x0 in
  let legacy = Analysis.Legacy.hull_bounds ~clip model ~x0:Sir.x0 ~horizon:2. in
  let n = Array.length fresh.Hull.times in
  Alcotest.(check int) "same grid" n (Array.length legacy.Hull.times);
  for i = 0 to n - 1 do
    Alcotest.(check bool) "legacy hull identical" true
      (fresh.Hull.lower.(i) = legacy.Hull.lower.(i)
      && fresh.Hull.upper.(i) = legacy.Hull.upper.(i))
  done

let suites =
  [
    ( "legacy",
      [
        Alcotest.test_case "legacy wrappers agree" `Slow
          test_legacy_wrappers_agree;
        Alcotest.test_case "legacy hull agrees" `Quick test_legacy_hull_agrees;
      ] );
  ]
