(* End-to-end checks of the paper's Sec. V claims on the SIR model. *)
open Umf

let p = Sir.default_params

let di = Sir.di p

let test_pontryagin_vs_brute_force () =
  (* the optimal control is bang-bang with one switch (Fig. 2 top):
     scanning the switch time gives an independent lower bound on the
     true maximum, which the PMP solver must match *)
  let value_of_switch s =
    let control t _x = if t < s then [| p.Sir.theta_min |] else [| p.Sir.theta_max |] in
    let traj = Di.integrate_control di ~control ~x0:Sir.x0 ~horizon:3. ~dt:1e-3 in
    (Ode.Traj.last traj).(1)
  in
  let brute = ref neg_infinity in
  for i = 0 to 150 do
    let v = value_of_switch (3. *. float_of_int i /. 150.) in
    if v > !brute then brute := v
  done;
  let pmp =
    (Pontryagin.solve ~steps:300 di ~x0:Sir.x0 ~horizon:3. ~sense:`Max (`Coord 1)).value
  in
  Alcotest.(check (float 2e-3)) "PMP matches brute force" !brute pmp

let test_fig2_switching_structure () =
  (* paper: max-xI(3) control switches theta_min -> theta_max near 2.25;
     min-xI(3) control switches at ~0.7 and ~2.2 *)
  let rmax = Pontryagin.solve ~steps:300 di ~x0:Sir.x0 ~horizon:3. ~sense:`Max (`Coord 1) in
  (match Pontryagin.switch_times rmax ~coord:0 with
  | [ s ] -> Alcotest.(check bool) "max switch near 2.25" true (s > 2.0 && s < 2.5)
  | l -> Alcotest.failf "expected 1 switch, got %d" (List.length l));
  let rmin = Pontryagin.solve ~steps:300 di ~x0:Sir.x0 ~horizon:3. ~sense:`Min (`Coord 1) in
  (match Pontryagin.switch_times rmin ~coord:0 with
  | [ s1; s2 ] ->
      Alcotest.(check bool) "min switch 1 near 0.7" true (s1 > 0.4 && s1 < 1.0);
      Alcotest.(check bool) "min switch 2 near 2.2" true (s2 > 1.9 && s2 < 2.4)
  | l -> Alcotest.failf "expected 2 switches, got %d" (List.length l))

let test_fig1_uncertain_within_imprecise () =
  (* Eq. 12: strict inclusion of the uncertain envelope, with a large
     gap at late times (the paper's headline observation) *)
  List.iter
    (fun t ->
      let u_lo, u_hi = Uncertain.extremal_coord di ~x0:Sir.x0 ~coord:1 ~horizon:t in
      let i_lo =
        (Pontryagin.solve ~steps:300 di ~x0:Sir.x0 ~horizon:t ~sense:`Min (`Coord 1)).value
      in
      let i_hi =
        (Pontryagin.solve ~steps:300 di ~x0:Sir.x0 ~horizon:t ~sense:`Max (`Coord 1)).value
      in
      Alcotest.(check bool) "imprecise below uncertain" true (i_lo <= u_lo +. 1e-4);
      Alcotest.(check bool) "imprecise above uncertain" true (i_hi >= u_hi -. 1e-4);
      if t >= 3. then
        Alcotest.(check bool)
          (Printf.sprintf "strict gap at t=%g (%.3f vs %.3f)" t i_hi u_hi)
          true
          (i_hi > u_hi *. 1.3))
    [ 1.; 3.; 4. ]

let test_fig4_hull_looser_than_pontryagin () =
  let clip = Optim.Box.make [| 0.; 0. |] [| 1.; 1. |] in
  let h = Hull.bounds ~clip di ~x0:Sir.x0 ~horizon:4. ~dt:0.02 in
  List.iter
    (fun t ->
      let i_lo =
        (Pontryagin.solve ~steps:200 di ~x0:Sir.x0 ~horizon:t ~sense:`Min (`Coord 1)).value
      in
      let i_hi =
        (Pontryagin.solve ~steps:200 di ~x0:Sir.x0 ~horizon:t ~sense:`Max (`Coord 1)).value
      in
      let h_lo = (Hull.lower_at h t).(1) and h_hi = (Hull.upper_at h t).(1) in
      Alcotest.(check bool) "hull below exact lower" true (h_lo <= i_lo +. 1e-3);
      Alcotest.(check bool) "hull above exact upper" true (h_hi >= i_hi -. 1e-3))
    [ 1.; 2.; 4. ]

let test_fig4_hull_degrades_with_theta_max () =
  let clip = Optim.Box.make [| 0.; 0. |] [| 1.; 1. |] in
  let width theta_max =
    let di' = Sir.di { p with Sir.theta_max } in
    let h = Hull.bounds ~clip di' ~x0:Sir.x0 ~horizon:10. ~dt:0.02 in
    (Hull.final_width h).(1)
  in
  let w2 = width 2. and w5 = width 5. and w6 = width 6. in
  Alcotest.(check bool) (Printf.sprintf "tight at 2 (%.3f)" w2) true (w2 < 0.1);
  Alcotest.(check bool) (Printf.sprintf "loose at 5 (%.3f)" w5) true (w5 > 0.1);
  Alcotest.(check bool) (Printf.sprintf "trivial at 6 (%.3f)" w6) true (w6 > 0.9)

let test_fig3_birkhoff_vs_uncertain () =
  let b = Birkhoff.compute di ~x_start:Sir.x0 in
  Alcotest.(check bool) "birkhoff converged" false b.Birkhoff.escaped;
  (* every uncertain equilibrium lies inside the imprecise region *)
  let eqs = Uncertain.equilibria ~grid:9 di ~x0:Sir.x0 in
  (* extreme equilibria sit exactly on the region boundary; allow the
     polygon-simplification slack *)
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Printf.sprintf "equilibrium (%.3f, %.3f) inside" e.(0) e.(1))
        true
        (Birkhoff.contains ~tol:3e-3 b (e.(0), e.(1))))
    eqs;
  (* the paper: some imprecise steady states have smaller X_S and larger
     X_I than every uncertain equilibrium *)
  let (bxmin, _), (_, bymax) = Geometry.bounding_box b.Birkhoff.polygon in
  let exmin = List.fold_left (fun acc e -> Float.min acc e.(0)) 1. eqs in
  let eymax = List.fold_left (fun acc e -> Float.max acc e.(1)) 0. eqs in
  Alcotest.(check bool) "region extends below uncertain X_S" true (bxmin < exmin -. 0.02);
  Alcotest.(check bool) "region extends above uncertain X_I" true (bymax > eymax +. 0.02)

let test_fig6_stationary_inclusion () =
  (* simulations under both adversarial policies stay essentially inside
     the Birkhoff centre for N = 1000; the hysteresis policy θ1 rides
     exactly along the region boundary, so inclusion is measured with a
     small boundary slack *)
  let b = Birkhoff.compute di ~x_start:Sir.x0 in
  let region =
    { Analysis.birkhoff = b; area = Birkhoff.area b;
      converged = Birkhoff.converged b; metrics = Analysis.no_metrics }
  in
  let spec = Analysis.spec ~horizon:120. (Sir.make p) in
  List.iter
    (fun (policy, name) ->
      let cloud =
        Analysis.stationary_cloud spec ~n:1000 ~x0:Sir.x0 ~policy ~warmup:20.
          ~samples:400 ~seed:7
      in
      let incl =
        Analysis.inclusion_fraction ~tol:3e-3 spec region cloud.Analysis.states
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s inclusion %.3f >= 0.8" name incl.Analysis.fraction)
        true
        (incl.Analysis.fraction >= 0.8))
    [ (Sir.policy_theta1 p, "theta1"); (Sir.policy_theta2 p, "theta2") ]

let test_fig6_inclusion_improves_with_n () =
  let b = Birkhoff.compute di ~x_start:Sir.x0 in
  let region =
    { Analysis.birkhoff = b; area = Birkhoff.area b;
      converged = Birkhoff.converged b; metrics = Analysis.no_metrics }
  in
  let spec = Analysis.spec ~horizon:80. (Sir.make p) in
  let stats n =
    let cloud =
      Analysis.stationary_cloud spec ~n ~x0:Sir.x0
        ~policy:(Sir.policy_theta2 p) ~warmup:20. ~samples:300 ~seed:11
    in
    ( (Analysis.inclusion_fraction ~tol:3e-3 spec region cloud.Analysis.states)
        .Analysis.fraction,
      (Analysis.mean_exceedance spec region cloud.Analysis.states).Analysis.mean
    )
  in
  let f100, e100 = stats 100 and f5000, e5000 = stats 5000 in
  Alcotest.(check bool)
    (Printf.sprintf "inclusion improves: %.3f -> %.3f" f100 f5000)
    true
    (f5000 >= f100 && f5000 >= 0.9);
  Alcotest.(check bool)
    (Printf.sprintf "exceedance shrinks: %.4f -> %.4f" e100 e5000)
    true
    (e5000 < e100 /. 3. || e5000 < 1e-4)

let suites =
  [
    ( "sir-paper",
      [
        Alcotest.test_case "PMP vs brute force" `Quick test_pontryagin_vs_brute_force;
        Alcotest.test_case "Fig 2 switching structure" `Quick test_fig2_switching_structure;
        Alcotest.test_case "Fig 1 uncertain within imprecise" `Quick test_fig1_uncertain_within_imprecise;
        Alcotest.test_case "Fig 4 hull conservative" `Quick test_fig4_hull_looser_than_pontryagin;
        Alcotest.test_case "Fig 4 hull degradation" `Quick test_fig4_hull_degrades_with_theta_max;
        Alcotest.test_case "Fig 3 Birkhoff vs uncertain" `Quick test_fig3_birkhoff_vs_uncertain;
        Alcotest.test_case "Fig 6 stationary inclusion" `Slow test_fig6_stationary_inclusion;
        Alcotest.test_case "Fig 6 inclusion vs N" `Slow test_fig6_inclusion_improves_with_n;
      ] );
  ]
