(* The finite-N sparse engine against the mean-field machinery:
   Theorem 1 sanity (the exact transient mean lies inside the
   differential-inclusion bounds), envelope consistency between the
   two scenarios, pool determinism and the affine-θ gate. *)

open Umf

let infected x = x.(1)

let times = Vec.linspace 0. 5. 6

let test_theorem1_sir () =
  (* Theorem 1: for large N the exact E[X_I(t)] under any fixed θ lies
     inside the imprecise DI transient bounds.  N = 100 (5151 lattice
     states, solved exactly by sparse uniformisation) with a slack for
     the O(1/sqrt N) finite-size gap. *)
  let model = Sir.make Sir.default_params in
  let di_spec = Analysis.spec ~horizon:5. model in
  let bounds = Analysis.transient_bounds ~times di_spec ~x0:Sir.x0 ~coord:1 in
  let fn_spec = Analysis.spec ~scenario:(Analysis.Uncertain 3) ~horizon:5. model in
  let fn = Analysis.finite_n_transient ~times fn_spec ~n:100 ~reward:infected in
  Alcotest.(check int) "lattice size" 5151 fn.Analysis.states;
  let slack = 0.05 in
  Array.iteri
    (fun j t ->
      let m = fn.Analysis.mean.(j) in
      Alcotest.(check bool)
        (Printf.sprintf "mean above DI lower at t=%g" t)
        true
        (m >= bounds.Analysis.lower.(j) -. slack);
      Alcotest.(check bool)
        (Printf.sprintf "mean below DI upper at t=%g" t)
        true
        (m <= bounds.Analysis.upper.(j) +. slack);
      (* the grid includes the box midpoint, so the uncertain envelope
         brackets the midpoint mean exactly *)
      Alcotest.(check bool)
        (Printf.sprintf "envelope brackets mean at t=%g" t)
        true
        (fn.Analysis.lower.(j) <= m +. 1e-9
        && m -. 1e-9 <= fn.Analysis.upper.(j)))
    times;
  Alcotest.(check (float 1e-9)) "t=0 mean is the initial density" 0.3
    fn.Analysis.mean.(0)

let test_imprecise_contains_uncertain () =
  (* the imprecise (time-varying θ) envelope must contain the
     uncertain (constant θ) one; slack covers the backward sweep's
     first-order discretisation *)
  let model = Sir.make Sir.default_params in
  let unc_spec =
    Analysis.spec ~scenario:(Analysis.Uncertain 3) ~horizon:2. model
  in
  let imp_spec = Analysis.spec ~horizon:2. model in
  let t2 = Vec.linspace 0. 2. 5 in
  let unc = Analysis.finite_n_transient ~times:t2 unc_spec ~n:30 ~reward:infected in
  let imp = Analysis.finite_n_transient ~times:t2 imp_spec ~n:30 ~reward:infected in
  let slack = 0.05 in
  Array.iteri
    (fun j t ->
      Alcotest.(check bool)
        (Printf.sprintf "imprecise lower below uncertain at t=%g" t)
        true
        (imp.Analysis.lower.(j) <= unc.Analysis.lower.(j) +. slack);
      Alcotest.(check bool)
        (Printf.sprintf "imprecise upper above uncertain at t=%g" t)
        true
        (imp.Analysis.upper.(j) >= unc.Analysis.upper.(j) -. slack))
    t2

let test_pool_bit_identical () =
  let model = Sir.make Sir.default_params in
  let run pool =
    let s =
      Analysis.spec ~scenario:(Analysis.Uncertain 2) ~horizon:2. ?pool model
    in
    Analysis.finite_n_transient ~times:(Vec.linspace 0. 2. 5) s ~n:40
      ~reward:infected
  in
  let seq = run None in
  let par =
    Runtime.Pool.with_pool ~domains:2 (fun pool -> run (Some pool))
  in
  let bitwise name a b =
    Array.iteri
      (fun i x ->
        if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then
          Alcotest.failf "%s differs at %d" name i)
      a
  in
  bitwise "mean" seq.Analysis.mean par.Analysis.mean;
  bitwise "lower" seq.Analysis.lower par.Analysis.lower;
  bitwise "upper" seq.Analysis.upper par.Analysis.upper

let test_affine_gate () =
  (* a θ²-rate model is not affine in θ: the imprecise finite-N sweep
     must refuse (vertex extremisation would be unsound), the
     uncertain grid must still work *)
  let open Expr in
  let model =
    Model.make ~name:"quad" ~var_names:[| "x" |] ~theta_names:[| "k" |]
      ~theta:(Optim.Box.make [| 1. |] [| 2. |])
      ~x0:[| 0.5 |]
      [
        { Model.name = "up"; change = [| 1. |];
          rate = theta 0 *: theta 0 *: max_ (const 0.) (const 1. -: var 0) };
        { Model.name = "down"; change = [| -1. |]; rate = var 0 };
      ]
  in
  Alcotest.(check bool) "model really is non-affine" false
    (Model.affine_in_theta model);
  let imp_spec = Analysis.spec ~horizon:1. model in
  (match
     Analysis.finite_n_transient imp_spec ~n:5 ~reward:(fun x -> x.(0))
   with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  let unc_spec = Analysis.spec ~scenario:(Analysis.Uncertain 2) ~horizon:1. model in
  let fn = Analysis.finite_n_transient unc_spec ~n:5 ~reward:(fun x -> x.(0)) in
  Array.iteri
    (fun j _ ->
      Alcotest.(check bool) "envelope ordered" true
        (fn.Analysis.lower.(j) <= fn.Analysis.upper.(j) +. 1e-12))
    fn.Analysis.times

let suites =
  [
    ( "finite_n",
      [
        Alcotest.test_case "Theorem 1 sanity (N=100 SIR)" `Slow
          test_theorem1_sir;
        Alcotest.test_case "imprecise contains uncertain" `Quick
          test_imprecise_contains_uncertain;
        Alcotest.test_case "pool bit-identical" `Quick test_pool_bit_identical;
        Alcotest.test_case "affine gate" `Quick test_affine_gate;
      ] );
  ]
