(* The finite-N engine against the mean-field machinery: Theorem 1
   sanity (the exact transient mean lies inside the
   differential-inclusion bounds), envelope consistency between the
   two scenarios, pool determinism, the affine-θ gate, adaptive
   truncation soundness and the deprecated Analysis wrapper. *)

open Umf

let times = Vec.linspace 0. 5. 6

let engine_spec ?pool ?truncation ~scenario ~horizon ~times ~n model =
  Ctmc.Engine.spec ~scenario ~horizon ~times ?truncation ?pool ~n model

let test_theorem1_sir () =
  (* Theorem 1: for large N the exact E[X_I(t)] under any fixed θ lies
     inside the imprecise DI transient bounds.  N = 100 (5151 lattice
     states, solved exactly by sparse uniformisation) with a slack for
     the O(1/sqrt N) finite-size gap. *)
  let model = Sir.make Sir.default_params in
  let di_spec = Analysis.spec ~horizon:5. model in
  let bounds = Analysis.transient_bounds ~times di_spec ~x0:Sir.x0 ~coord:1 in
  let fn =
    Ctmc.Engine.envelope
      (engine_spec ~scenario:(Ctmc.Engine.Uncertain 3) ~horizon:5. ~times
         ~n:100 model)
      ~reward:(Ctmc.Engine.Coord 1)
  in
  Alcotest.(check int) "lattice size" 5151 fn.Ctmc.Engine.states;
  let slack = 0.05 in
  Array.iteri
    (fun j t ->
      let m = fn.mean.(j) in
      Alcotest.(check bool)
        (Printf.sprintf "mean above DI lower at t=%g" t)
        true
        (m >= bounds.Analysis.lower.(j) -. slack);
      Alcotest.(check bool)
        (Printf.sprintf "mean below DI upper at t=%g" t)
        true
        (m <= bounds.Analysis.upper.(j) +. slack);
      (* the grid includes the box midpoint, so the uncertain envelope
         brackets the midpoint mean exactly *)
      Alcotest.(check bool)
        (Printf.sprintf "envelope brackets mean at t=%g" t)
        true
        (fn.lower.(j) <= m +. 1e-9 && m -. 1e-9 <= fn.upper.(j)))
    times;
  Alcotest.(check (float 1e-9)) "t=0 mean is the initial density" 0.3
    fn.mean.(0);
  (* the space is exact so nothing escapes; the tail deficit is pure
     roundoff of the log-space Poisson weights (ln k! sums ~1.6e3 logs
     at λt ≈ 1.5e3, so Σ w_k = 1 ± ~1e-9, far above ε = 1e-12) *)
  Alcotest.(check bool) "exact certificates" true
    (Array.for_all
       (fun (c : Ctmc.Engine.certificate) ->
         c.escaped = 0. && c.tail <= 1e-8)
       fn.certificates)

let test_imprecise_contains_uncertain () =
  (* the imprecise (time-varying θ) envelope must contain the
     uncertain (constant θ) one; slack covers the backward sweep's
     first-order discretisation *)
  let model = Sir.make Sir.default_params in
  let t2 = Vec.linspace 0. 2. 5 in
  let envelope scenario =
    Ctmc.Engine.envelope
      (engine_spec ~scenario ~horizon:2. ~times:t2 ~n:30 model)
      ~reward:(Ctmc.Engine.Coord 1)
  in
  let unc = envelope (Ctmc.Engine.Uncertain 3) in
  let imp = envelope Ctmc.Engine.Imprecise in
  let slack = 0.05 in
  Array.iteri
    (fun j t ->
      Alcotest.(check bool)
        (Printf.sprintf "imprecise lower below uncertain at t=%g" t)
        true
        (imp.Ctmc.Engine.lower.(j) <= unc.Ctmc.Engine.lower.(j) +. slack);
      Alcotest.(check bool)
        (Printf.sprintf "imprecise upper above uncertain at t=%g" t)
        true
        (imp.upper.(j) >= unc.upper.(j) -. slack))
    t2

let test_pool_bit_identical () =
  let model = Sir.make Sir.default_params in
  let run pool =
    Ctmc.Engine.envelope
      (engine_spec ?pool ~scenario:(Ctmc.Engine.Uncertain 2) ~horizon:2.
         ~times:(Vec.linspace 0. 2. 5) ~n:40 model)
      ~reward:(Ctmc.Engine.Coord 1)
  in
  let seq = run None in
  let par = Runtime.Pool.with_pool ~domains:2 (fun pool -> run (Some pool)) in
  let bitwise name a b =
    Array.iteri
      (fun i x ->
        if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then
          Alcotest.failf "%s differs at %d" name i)
      a
  in
  bitwise "mean" seq.Ctmc.Engine.mean par.Ctmc.Engine.mean;
  bitwise "lower" seq.lower par.lower;
  bitwise "upper" seq.upper par.upper

let quad_model () =
  let open Expr in
  Model.make ~name:"quad" ~var_names:[| "x" |] ~theta_names:[| "k" |]
    ~theta:(Optim.Box.make [| 1. |] [| 2. |])
    ~x0:[| 0.5 |]
    [
      { Model.name = "up"; change = [| 1. |];
        rate = theta 0 *: theta 0 *: max_ (const 0.) (const 1. -: var 0) };
      { Model.name = "down"; change = [| -1. |]; rate = var 0 };
    ]

let test_affine_gate () =
  (* a θ²-rate model is not affine in θ: the imprecise finite-N sweep
     must refuse (vertex extremisation would be unsound), the
     uncertain grid must still work *)
  let model = quad_model () in
  Alcotest.(check bool) "model really is non-affine" false
    (Model.affine_in_theta model);
  let t1 = Vec.linspace 0. 1. 5 in
  let envelope scenario =
    Ctmc.Engine.envelope
      (engine_spec ~scenario ~horizon:1. ~times:t1 ~n:5 model)
      ~reward:(Ctmc.Engine.Coord 0)
  in
  (match envelope Ctmc.Engine.Imprecise with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  let fn = envelope (Ctmc.Engine.Uncertain 2) in
  Array.iteri
    (fun j _ ->
      Alcotest.(check bool) "envelope ordered" true
        (fn.Ctmc.Engine.lower.(j) <= fn.Ctmc.Engine.upper.(j) +. 1e-12))
    fn.times

let test_adaptive_bounds_exact_run () =
  (* on a lattice that fits the budget, Adaptive enumerates the same
     exact space: identical values, zero escaped mass *)
  let model = Sir.make Sir.default_params in
  let t2 = Vec.linspace 0. 2. 5 in
  let run truncation =
    Ctmc.Engine.transient
      (engine_spec ~truncation ~scenario:(Ctmc.Engine.Uncertain 2)
         ~horizon:2. ~times:t2 ~n:30 model)
      ~rewards:[| Ctmc.Engine.Coord 1 |]
  in
  let exact = run (Ctmc.Engine.Exact { max_states = 1_000 }) in
  let adaptive = run (Ctmc.Engine.Adaptive { max_states = 1_000 }) in
  Alcotest.(check int)
    "same lattice" exact.Ctmc.Engine.states adaptive.Ctmc.Engine.states;
  Array.iteri
    (fun j row ->
      Array.iteri
        (fun r x ->
          if Int64.bits_of_float x <> Int64.bits_of_float adaptive.value.(j).(r)
          then Alcotest.failf "value (%d,%d) differs" j r)
        row)
    exact.value

let test_adaptive_bounds_truncated_run () =
  (* shrink the budget until the lattice truncates: Exact refuses,
     Adaptive returns an interval whose width is the certified escaped
     mass — and it must bracket the exact answer computed on the full
     lattice *)
  let model = Sir.make Sir.default_params in
  let t2 = Vec.linspace 0. 2. 5 in
  let run truncation =
    Ctmc.Engine.transient
      (engine_spec ~truncation ~scenario:(Ctmc.Engine.Uncertain 2)
         ~horizon:2. ~times:t2 ~n:30 model)
      ~rewards:[| Ctmc.Engine.Coord 1 |]
  in
  (match run (Ctmc.Engine.Exact { max_states = 100 }) with
  | _ -> Alcotest.fail "expected Failure on exceeded budget"
  | exception Failure _ -> ());
  let full = run (Ctmc.Engine.Exact { max_states = 1_000 }) in
  let cut = run (Ctmc.Engine.Adaptive { max_states = 100 }) in
  Alcotest.(check int) "retained = budget" 100 cut.Ctmc.Engine.states;
  Array.iteri
    (fun j (c : Ctmc.Engine.certificate) ->
      let lost = c.escaped +. c.tail in
      Alcotest.(check bool)
        (Printf.sprintf "escaped mass positive by t=%g" t2.(j))
        true
        (j = 0 || lost > 0.);
      Alcotest.(check bool)
        (Printf.sprintf "interval brackets exact at t=%g" t2.(j))
        true
        (cut.lower.(j).(0) <= full.value.(j).(0) +. 1e-9
        && full.value.(j).(0) <= cut.upper.(j).(0) +. 1e-9);
      Alcotest.(check bool)
        (Printf.sprintf "interval width = lost * range at t=%g" t2.(j))
        true
        (Float.abs (cut.upper.(j).(0) -. cut.lower.(j).(0) -. lost) < 1e-12))
    cut.certificates

(* the deprecated one-line wrapper must agree with the Engine it
   forwards to *)
[@@@alert "-deprecated"]

let test_deprecated_wrapper_compat () =
  let model = Sir.make Sir.default_params in
  let t2 = Vec.linspace 0. 2. 5 in
  let spec =
    Analysis.spec ~scenario:(Analysis.Uncertain 2) ~horizon:2. model
  in
  let fn =
    Analysis.finite_n_transient ~times:t2 spec ~n:30 ~reward:(fun x -> x.(1))
  in
  let env =
    Ctmc.Engine.envelope
      (engine_spec ~scenario:(Ctmc.Engine.Uncertain 2) ~horizon:2. ~times:t2
         ~n:30 model)
      ~reward:(Ctmc.Engine.Lattice (fun x -> x.(1)))
  in
  Alcotest.(check int) "states" env.Ctmc.Engine.states fn.Analysis.states;
  Array.iteri
    (fun j x ->
      if Int64.bits_of_float x <> Int64.bits_of_float env.mean.(j) then
        Alcotest.failf "wrapper mean differs at %d" j)
    fn.Analysis.mean;
  Array.iteri
    (fun j x ->
      if Int64.bits_of_float x <> Int64.bits_of_float env.lower.(j) then
        Alcotest.failf "wrapper lower differs at %d" j)
    fn.Analysis.lower

let suites =
  [
    ( "finite_n",
      [
        Alcotest.test_case "Theorem 1 sanity (N=100 SIR)" `Slow
          test_theorem1_sir;
        Alcotest.test_case "imprecise contains uncertain" `Quick
          test_imprecise_contains_uncertain;
        Alcotest.test_case "pool bit-identical" `Quick test_pool_bit_identical;
        Alcotest.test_case "affine gate" `Quick test_affine_gate;
        Alcotest.test_case "adaptive = exact within budget" `Quick
          test_adaptive_bounds_exact_run;
        Alcotest.test_case "adaptive certifies truncated run" `Quick
          test_adaptive_bounds_truncated_run;
        Alcotest.test_case "deprecated wrapper compat" `Quick
          test_deprecated_wrapper_compat;
      ] );
  ]
