(* Black-box test of the umf_cli --dt/--epsilon surface: --dt alone
   still works but warns on stderr (both solvers' wording), and
   combining --dt with --epsilon is a hard cmdliner usage error that
   names --epsilon as the winner. *)

let cli = Sys.argv.(1)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

(* exit code + captured stderr of one invocation (stdout discarded) *)
let run args =
  let err_file = Filename.temp_file "umf_cli_test" ".err" in
  let err_fd =
    Unix.openfile err_file [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
  in
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process cli
      (Array.of_list (cli :: args))
      Unix.stdin null err_fd
  in
  Unix.close err_fd;
  Unix.close null;
  let _, status = Unix.waitpid [] pid in
  let code =
    match status with
    | Unix.WEXITED c -> c
    | Unix.WSIGNALED s | Unix.WSTOPPED s -> 128 + s
  in
  let ic = open_in_bin err_file in
  let err = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove err_file;
  (code, err)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let check_warns name args wording =
  let code, err = run args in
  if code <> 0 then
    fail "%s: expected success with --dt alone, got exit %d:\n%s" name code
      err;
  List.iter
    (fun w ->
      if not (contains err w) then
        fail "%s: stderr lacks %S:\n%s" name w err)
    ("warning: --dt is deprecated" :: "--epsilon" :: wording)

let check_conflict name args =
  let code, err = run args in
  (* Term.term_result errors exit with cmdliner's usage-error code *)
  if code <> 124 then
    fail "%s: expected usage error (124) for --epsilon + --dt, got %d:\n%s"
      name code err;
  List.iter
    (fun w ->
      if not (contains err w) then
        fail "%s: conflict message lacks %S:\n%s" name w err)
    [ "--epsilon and --dt cannot be combined"; "winner" ]

let bounds_args =
  [ "bounds"; "-m"; "sir"; "--var"; "I"; "--horizon"; "0.5"; "--points";
    "2"; "--steps"; "20"; "--dt"; "0.05" ]

let ctmc_args =
  [ "ctmc"; "transient"; "-m"; "sir"; "--size"; "5"; "--points"; "2";
    "--horizon"; "0.5"; "--dt"; "0.05" ]

let () =
  check_warns "bounds --dt" bounds_args
    [ "grid is refined until the ledger's" ];
  check_warns "ctmc --dt" ctmc_args [ "adaptive sweep spends it" ];
  check_conflict "bounds --epsilon --dt"
    (bounds_args @ [ "--epsilon"; "1e-2" ]);
  check_conflict "ctmc --epsilon --dt" (ctmc_args @ [ "--epsilon"; "1e-2" ]);
  print_endline
    "cli-deprecation OK (both --dt warnings, hard --epsilon/--dt conflict \
     on both solvers)"
