open Umf_numerics
open Umf_meanfield
module Generator = Umf_ctmc.Generator
module Imprecise_ctmc = Umf_ctmc.Imprecise_ctmc
module Pool = Umf_runtime.Runtime.Pool

let sir () = Model.population (Umf_models.Sir.make Umf_models.Sir.default_params)

let sir_space ?pool:_ n =
  let pop = sir () in
  let sp = Ctmc_of_population.state_space pop ~n ~x0:[| 0.7; 0.3 |] in
  (pop, sp)

let test_sir_state_space () =
  let _, sp = sir_space 10 in
  (* SIR is closed on the S + I <= N simplex *)
  Alcotest.(check int) "simplex size" 66 (Ctmc_of_population.n_states sp);
  Alcotest.(check int) "population size" 10
    (Ctmc_of_population.population_size sp);
  Alcotest.(check int) "initial state is 0" 0 (Ctmc_of_population.x0_index sp);
  let c0 = Ctmc_of_population.counts sp 0 in
  Alcotest.(check (array int)) "initial counts = round(N x0)" [| 7; 3 |] c0;
  Alcotest.(check bool) "density = counts / N" true
    (Vec.approx_equal ~tol:1e-12 [| 0.7; 0.3 |] (Ctmc_of_population.density sp 0));
  (* index is the inverse of counts *)
  for s = 0 to Ctmc_of_population.n_states sp - 1 do
    match Ctmc_of_population.index sp (Ctmc_of_population.counts sp s) with
    | Some s' -> Alcotest.(check int) "index round trip" s s'
    | None -> Alcotest.fail "enumerated state not indexed"
  done;
  Alcotest.(check int) "unreachable counts" 0
    (match Ctmc_of_population.index sp [| 11; 0 |] with Some _ -> 1 | None -> 0)

let test_point_mass_and_reward () =
  let _, sp = sir_space 10 in
  let p0 = Ctmc_of_population.point_mass sp in
  Alcotest.(check (float 0.)) "mass at x0" 1. p0.(0);
  Alcotest.(check (float 0.)) "total mass" 1. (Vec.sum p0);
  let infected = Ctmc_of_population.reward sp (fun x -> x.(1)) in
  Alcotest.(check int) "reward dimension" (Ctmc_of_population.n_states sp)
    (Vec.dim infected);
  Alcotest.(check (float 1e-12)) "reward at x0" 0.3 infected.(0)

let test_generator_matches_propensities () =
  (* the assembled sparse generator must reproduce the model's own
     propensities: exit rate of every state = sum of N·β over classes
     (all SIR change vectors are nonzero, so nothing cancels into the
     diagonal) *)
  let pop, sp = sir_space 10 in
  let theta = Optim.Box.midpoint pop.Population.theta in
  let g = Ctmc_of_population.generator sp pop ~theta in
  Alcotest.(check int) "generator size" (Ctmc_of_population.n_states sp)
    (Generator.n_states g);
  for s = 0 to Ctmc_of_population.n_states sp - 1 do
    let x = Ctmc_of_population.density sp s in
    let prop = Population.propensities pop ~n:10 x theta in
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "exit rate of state %d" s)
      (Vec.sum prop) (Generator.exit_rate g s)
  done

let test_imprecise_matches_generator () =
  let pop, sp = sir_space 8 in
  let im = Ctmc_of_population.imprecise sp pop in
  let theta = Optim.Box.midpoint pop.Population.theta in
  let g = Ctmc_of_population.generator sp pop ~theta in
  let g' = Imprecise_ctmc.generator_at im theta in
  for s = 0 to Ctmc_of_population.n_states sp - 1 do
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "exit rate of state %d" s)
      (Generator.exit_rate g s) (Generator.exit_rate g' s)
  done

let test_pool_assembly_bit_identical () =
  (* N = 50 gives 1326 states, above the sequential-assembly cutoff, so
     the pooled path actually runs *)
  let pop, sp = sir_space 50 in
  let theta = Optim.Box.midpoint pop.Population.theta in
  let seq = Ctmc_of_population.generator sp pop ~theta in
  let par =
    Pool.with_pool ~domains:2 (fun pool ->
        Ctmc_of_population.generator ~pool sp pop ~theta)
  in
  Alcotest.(check int) "same nnz" (Generator.nnz seq) (Generator.nnz par);
  for s = 0 to Ctmc_of_population.n_states sp - 1 do
    let a = Generator.outgoing seq s and b = Generator.outgoing par s in
    if Array.length a <> Array.length b then
      Alcotest.failf "row %d: different lengths" s;
    Array.iteri
      (fun i (d, r) ->
        let d', r' = b.(i) in
        if d <> d' || Int64.bits_of_float r <> Int64.bits_of_float r' then
          Alcotest.failf "row %d entry %d differs" s i)
      a
  done

let test_truncation_is_loud () =
  let pop = sir () in
  (* a clip box smaller than the reachable simplex: immunity loss
     pushes S past 0.8 eventually, so enumeration must fail loudly
     instead of silently cutting the lattice *)
  let clip = Optim.Box.make [| 0.; 0. |] [| 0.8; 0.8 |] in
  (match Ctmc_of_population.state_space ~clip pop ~n:10 ~x0:[| 0.7; 0.3 |] with
  | _ -> Alcotest.fail "expected Failure on clipped lattice"
  | exception Failure msg ->
      Alcotest.(check bool) "mentions the clip box" true
        (String.length msg > 0));
  (* an explicit state budget that is too small also raises *)
  match Ctmc_of_population.state_space ~max_states:10 pop ~n:10 ~x0:[| 0.7; 0.3 |] with
  | _ -> Alcotest.fail "expected Failure on max_states"
  | exception Failure _ -> ()

let test_rounding_preserves_total () =
  (* regression: at n = 25, per-coordinate rounding of n·x0 =
     (17.5, 7.5) gives (18, 8) — 26 counts out of 25 — off the
     S + I <= N simplex, from where infection walks to I = 26 and the
     enumeration (correctly) fails loudly.  Largest-remainder rounding
     must keep the total at 25 and enumerate the full simplex. *)
  let _, sp = sir_space 25 in
  let c0 = Ctmc_of_population.counts sp 0 in
  Alcotest.(check int) "initial total on the simplex" 25 (c0.(0) + c0.(1));
  Alcotest.(check (array int)) "ties break to the lower index" [| 18; 7 |] c0;
  Alcotest.(check int) "full simplex enumerated" (26 * 27 / 2)
    (Ctmc_of_population.n_states sp)

let test_validation () =
  let pop = sir () in
  (match Ctmc_of_population.state_space pop ~n:0 ~x0:[| 0.7; 0.3 |] with
  | _ -> Alcotest.fail "expected Invalid_argument on n = 0"
  | exception Invalid_argument _ -> ());
  match Ctmc_of_population.state_space pop ~n:10 ~x0:[| -0.1; 0.3 |] with
  | _ -> Alcotest.fail "expected Invalid_argument on negative x0"
  | exception Invalid_argument _ -> ()

let suites =
  [
    ( "ctmc_of_population",
      [
        Alcotest.test_case "SIR state space" `Quick test_sir_state_space;
        Alcotest.test_case "point mass and reward" `Quick
          test_point_mass_and_reward;
        Alcotest.test_case "generator matches propensities" `Quick
          test_generator_matches_propensities;
        Alcotest.test_case "imprecise matches generator" `Quick
          test_imprecise_matches_generator;
        Alcotest.test_case "pool assembly bit-identical" `Quick
          test_pool_assembly_bit_identical;
        Alcotest.test_case "truncation is loud" `Quick test_truncation_is_loud;
        Alcotest.test_case "rounding preserves the total" `Quick
          test_rounding_preserves_total;
        Alcotest.test_case "validation" `Quick test_validation;
      ] );
  ]
