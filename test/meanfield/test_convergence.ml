open Umf_numerics
open Umf_meanfield

let bd_model () =
  let tr name change rate = { Population.name; change; rate } in
  Population.make ~name:"bd" ~var_names:[| "X" |] ~theta_names:[| "theta" |]
    ~theta:(Optim.Box.make [| 0.5 |] [| 2. |])
    [
      tr "birth" [| 1. |] (fun x th -> th.(0) *. Float.max 0. (1. -. x.(0)));
      tr "death" [| -1. |] (fun x _ -> Float.max 0. x.(0));
    ]

let test_sup_distance () =
  let t1 =
    Ode.Traj.of_arrays [| 0.; 1.; 2. |] [| [| 0. |]; [| 1. |]; [| 2. |] |]
  in
  let t2 =
    Ode.Traj.of_arrays [| 0.; 1.; 2. |] [| [| 0. |]; [| 1.5 |]; [| 2. |] |]
  in
  Alcotest.(check (float 1e-12)) "sup distance" 0.5
    (Convergence.sup_distance t1 t2 ~times:[| 0.; 1.; 2. |]);
  Alcotest.(check (float 1e-12)) "identical" 0.
    (Convergence.sup_distance t1 t1 ~times:[| 0.; 0.5; 1.7 |])

let test_error_decreases_with_n () =
  (* Theorem 1: the error to the mean-field limit vanishes as N grows *)
  let m = bd_model () in
  let times = Vec.linspace 0. 5. 11 in
  let err n =
    Convergence.error_vs_limit m ~n ~theta:[| 1.5 |] ~x0:[| 0.2 |] ~times
      ~runs:20 ~seed:42
  in
  let e_small = err 50 and e_large = err 5000 in
  Alcotest.(check bool)
    (Printf.sprintf "error shrinks: %g -> %g" e_small e_large)
    true
    (e_large < e_small /. 3.);
  (* O(1/sqrt N): a factor 100 in N gives roughly a factor 10 in error *)
  Alcotest.(check bool) "large-N error small" true (e_large < 0.03)

let suites =
  [
    ( "convergence",
      [
        Alcotest.test_case "sup distance" `Quick test_sup_distance;
        Alcotest.test_case "error decreases with N" `Slow test_error_decreases_with_n;
      ] );
  ]
