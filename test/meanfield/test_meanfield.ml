let () =
  Alcotest.run "umf_meanfield"
    (Test_population.suites @ Test_policy.suites @ Test_ssa.suites
   @ Test_convergence.suites @ Test_model.suites
   @ Test_ctmc_of_population.suites)
