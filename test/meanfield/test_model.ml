open Umf_numerics
open Umf_meanfield

(* symbolic SIR (reduced 2-var): must agree with a closed-form drift *)
let sir_model () =
  let open Expr in
  let s = var 0 and i = var 1 in
  let tr name change rate = { Model.name; change; rate } in
  Model.make ~name:"sir" ~var_names:[| "S"; "I" |] ~theta_names:[| "th" |]
    ~theta:(Optim.Box.make [| 1. |] [| 10. |])
    ~x0:[| 0.7; 0.3 |]
    [
      tr "infection" [| -1.; 1. |] ((const 0.1 *: s) +: (theta 0 *: s *: i));
      tr "recovery" [| 0.; -1. |] (const 5. *: i);
      tr "immunity" [| 1.; 0. |]
        (const 1. *: max_ (const 0.) (const 1. -: s -: i));
    ]

let closed_drift x th =
  let s = x.(0) and i = x.(1) in
  [|
    1. -. (1.1 *. s) -. i -. (th *. s *. i);
    (0.1 *. s) +. (th *. s *. i) -. (5. *. i);
  |]

let test_population_matches () =
  let sys = sir_model () in
  let m = Model.population sys in
  List.iter
    (fun (s, i, th) ->
      let f = Population.drift m [| s; i |] [| th |] in
      Alcotest.(check bool)
        (Printf.sprintf "drift at (%g,%g)" s i)
        true
        (Vec.approx_equal ~tol:1e-12 (closed_drift [| s; i |] th) f))
    [ (0.7, 0.3, 1.); (0.5, 0.2, 5.); (0.3, 0.1, 10.) ]

let test_drift_exprs_eval () =
  let sys = sir_model () in
  let exprs = Model.drift_exprs sys in
  Alcotest.(check int) "two coords" 2 (Array.length exprs);
  let x = [| 0.6; 0.25 |] and th = [| 3. |] in
  let expected = closed_drift x 3. in
  Array.iteri
    (fun i e ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "f%d" i)
        expected.(i)
        (Expr.eval e ~x ~th))
    exprs

let test_jacobian_exact () =
  let sys = sir_model () in
  let x = [| 0.6; 0.25 |] and th = [| 3. |] in
  let jac = Model.jacobian sys x th in
  (* within the simplex the max(0, R) branch is active and smooth *)
  let fd = Diff.jacobian (fun y -> closed_drift y 3.) x in
  Alcotest.(check bool) "symbolic = FD of closed form" true
    (Mat.approx_equal ~tol:1e-5 jac fd)

let test_theta_jacobian () =
  let sys = sir_model () in
  let x = [| 0.6; 0.25 |] and th = [| 3. |] in
  let tj = Model.theta_jacobian sys x th in
  Alcotest.(check (float 1e-12)) "df0/dth" (-.(0.6 *. 0.25)) (Mat.get tj 0 0);
  Alcotest.(check (float 1e-12)) "df1/dth" (0.6 *. 0.25) (Mat.get tj 1 0)

let test_drift_interval_sound () =
  let sys = sir_model () in
  let m = Model.population sys in
  let xb = [| Interval.make 0.4 0.8; Interval.make 0.1 0.3 |] in
  let tb = [| Interval.make 1. 10. |] in
  let enc = Model.drift_interval sys ~x:xb ~th:tb in
  (* pointwise drift of the same model (with its max(0, R) guard) must
     land inside the enclosure at every box point, including points
     outside the simplex like (0.8, 0.3) *)
  List.iter
    (fun (s, i, th) ->
      let f = Population.drift m [| s; i |] [| th |] in
      Array.iteri
        (fun k fk ->
          Alcotest.(check bool)
            (Printf.sprintf "drift f%d at (%g,%g,%g) inside" k s i th)
            true
            (Interval.mem fk enc.(k)))
        f)
    [ (0.4, 0.1, 1.); (0.8, 0.3, 10.); (0.6, 0.2, 5.); (0.4, 0.3, 10.) ]

let test_structure_detection () =
  let sys = sir_model () in
  Alcotest.(check bool) "sir affine in theta" true (Model.affine_in_theta sys);
  (* multilinear fails because of max(0, 1 - S - I)? max disqualifies *)
  Alcotest.(check bool) "sir not multilinear (max node)" false
    (Model.multilinear sys);
  let open Expr in
  let bl =
    Model.make ~name:"bl" ~var_names:[| "X" |] ~theta_names:[| "th" |]
      ~theta:(Optim.Box.make [| 0. |] [| 1. |])
      ~x0:[| 0.5 |]
      [ { Model.name = "t"; change = [| 1. |]; rate = theta 0 *: var 0 } ]
  in
  Alcotest.(check bool) "bilinear is multilinear" true (Model.multilinear bl)

let test_validation () =
  let open Expr in
  Alcotest.check_raises "var out of range"
    (Invalid_argument "Model.make: t references x3 (dim 1)") (fun () ->
      ignore
        (Model.make ~name:"bad" ~var_names:[| "X" |] ~theta_names:[||]
           ~theta:(Optim.Box.make [||] [||])
           ~x0:[| 0. |]
           [ { Model.name = "t"; change = [| 1. |]; rate = var 3 } ]));
  Alcotest.check_raises "x0 dimension"
    (Invalid_argument "Model.make: x0 has dimension 2, expected 1") (fun () ->
      ignore
        (Model.make ~name:"bad" ~var_names:[| "X" |] ~theta_names:[||]
           ~theta:(Optim.Box.make [||] [||])
           ~x0:[| 0.; 0. |]
           [ { Model.name = "t"; change = [| 1. |]; rate = const 1. } ]))

let suites =
  [
    ( "model",
      [
        Alcotest.test_case "population matches closed form" `Quick test_population_matches;
        Alcotest.test_case "drift expressions" `Quick test_drift_exprs_eval;
        Alcotest.test_case "exact jacobian" `Quick test_jacobian_exact;
        Alcotest.test_case "theta jacobian" `Quick test_theta_jacobian;
        Alcotest.test_case "interval drift sound" `Quick test_drift_interval_sound;
        Alcotest.test_case "structure detection" `Quick test_structure_detection;
        Alcotest.test_case "validation" `Quick test_validation;
      ] );
  ]
