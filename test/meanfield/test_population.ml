open Umf_numerics
open Umf_meanfield

(* a birth-death population: birth at rate theta*(1-x), death at rate x *)
let bd_model () =
  let tr name change rate = { Population.name; change; rate } in
  Population.make ~name:"bd" ~var_names:[| "X" |] ~theta_names:[| "theta" |]
    ~theta:(Optim.Box.make [| 0.5 |] [| 2. |])
    [
      tr "birth" [| 1. |] (fun x th -> th.(0) *. Float.max 0. (1. -. x.(0)));
      tr "death" [| -1. |] (fun x _ -> Float.max 0. x.(0));
    ]

let test_make_validation () =
  Alcotest.check_raises "no vars" (Invalid_argument "Population.make: no variables")
    (fun () ->
      ignore
        (Population.make ~name:"x" ~var_names:[||] ~theta_names:[||]
           ~theta:(Optim.Box.make [||] [||])
           []));
  Alcotest.check_raises "theta mismatch"
    (Invalid_argument "Population.make: theta box/name dimension mismatch")
    (fun () ->
      ignore
        (Population.make ~name:"x" ~var_names:[| "a" |] ~theta_names:[||]
           ~theta:(Optim.Box.make [| 0. |] [| 1. |])
           []));
  Alcotest.check_raises "bad change"
    (Invalid_argument "Population.make: transition t has change of wrong dimension")
    (fun () ->
      ignore
        (Population.make ~name:"x" ~var_names:[| "a" |] ~theta_names:[||]
           ~theta:(Optim.Box.make [||] [||])
           [ { Population.name = "t"; change = [| 1.; 1. |]; rate = (fun _ _ -> 1.) } ]))

let test_drift () =
  let m = bd_model () in
  (* f(x, th) = th (1-x) - x *)
  let f = Population.drift m [| 0.25 |] [| 1. |] in
  Alcotest.(check (float 1e-12)) "drift" 0.5 f.(0);
  let f2 = Population.drift m [| 0.25 |] [| 2. |] in
  Alcotest.(check (float 1e-12)) "drift theta=2" 1.25 f2.(0)

let test_drift_rhs_equilibrium () =
  let m = bd_model () in
  (* equilibrium of th(1-x) = x at x = th/(1+th) *)
  let eq = Ode.fixed_point (Population.drift_rhs m ~theta:[| 2. |]) [| 0.1 |] in
  Alcotest.(check (float 1e-6)) "equilibrium" (2. /. 3.) eq.(0)

let test_controlled_rhs () =
  let m = bd_model () in
  let control t _x = if t < 1. then [| 0.5 |] else [| 2. |] in
  let rhs = Population.controlled_rhs m ~control in
  Alcotest.(check (float 1e-12)) "early" (0.5 *. 0.75 -. 0.25) (rhs 0.5 [| 0.25 |]).(0);
  Alcotest.(check (float 1e-12)) "late" (2. *. 0.75 -. 0.25) (rhs 2. [| 0.25 |]).(0)

let test_propensities () =
  let m = bd_model () in
  let props = Population.propensities m ~n:100 [| 0.25 |] [| 1. |] in
  Alcotest.(check (float 1e-9)) "birth" 75. props.(0);
  Alcotest.(check (float 1e-9)) "death" 25. props.(1)

let test_propensities_invalid () =
  let bad =
    Population.make ~name:"bad" ~var_names:[| "X" |] ~theta_names:[||]
      ~theta:(Optim.Box.make [||] [||])
      [ { Population.name = "neg"; change = [| 1. |]; rate = (fun _ _ -> -1.) } ]
  in
  Alcotest.check_raises "negative rate"
    (Invalid_argument "Population: transition neg has invalid rate") (fun () ->
      ignore (Population.propensities bad ~n:10 [| 0.5 |] [||]))

let test_total_rate_bound () =
  let m = bd_model () in
  let bound =
    Population.total_rate_bound m ~x_box:(Optim.Box.make [| 0. |] [| 1. |])
  in
  (* max total rate: theta(1-x) + x <= max(theta, 1) = 2 at x=0, th=2 *)
  Alcotest.(check bool) "bound dominates" true (bound >= 2.);
  Alcotest.(check bool) "bound not wild" true (bound <= 3.)

let prop_drift_linear_in_rates =
  (* drift at x is a linear combination of changes with non-negative
     weights: for the bd model |f| <= birth_rate + death_rate *)
  let gen = QCheck.Gen.(pair (float_range 0. 1.) (float_range 0.5 2.)) in
  QCheck.Test.make ~name:"drift bounded by total rate" ~count:200
    (QCheck.make gen) (fun (x, th) ->
      let m = bd_model () in
      let f = Population.drift m [| x |] [| th |] in
      let total = (th *. (1. -. x)) +. x in
      Float.abs f.(0) <= total +. 1e-9)

let suites =
  [
    ( "population",
      [
        Alcotest.test_case "make validation" `Quick test_make_validation;
        Alcotest.test_case "drift" `Quick test_drift;
        Alcotest.test_case "drift_rhs equilibrium" `Quick test_drift_rhs_equilibrium;
        Alcotest.test_case "controlled rhs" `Quick test_controlled_rhs;
        Alcotest.test_case "propensities" `Quick test_propensities;
        Alcotest.test_case "invalid rate detection" `Quick test_propensities_invalid;
        Alcotest.test_case "total rate bound" `Quick test_total_rate_bound;
        QCheck_alcotest.to_alcotest prop_drift_linear_in_rates;
      ] );
  ]
