open Umf_numerics
open Umf_meanfield

let bd_model () =
  let tr name change rate = { Population.name; change; rate } in
  Population.make ~name:"bd" ~var_names:[| "X" |] ~theta_names:[| "theta" |]
    ~theta:(Optim.Box.make [| 0.5 |] [| 2. |])
    [
      tr "birth" [| 1. |] (fun x th -> th.(0) *. Float.max 0. (1. -. x.(0)));
      tr "death" [| -1. |] (fun x _ -> Float.max 0. x.(0));
    ]

let constant th = Policy.constant [| th |]

let test_final_in_simplex () =
  let m = bd_model () in
  let rng = Rng.create 1 in
  for _ = 1 to 20 do
    let x = Ssa.final m ~n:50 ~x0:[| 0.3 |] ~policy:(constant 1.) ~tmax:5. rng in
    Alcotest.(check bool) "in [0,1]" true (x.(0) >= 0. && x.(0) <= 1.)
  done

let test_counts_are_integral () =
  let m = bd_model () in
  let rng = Rng.create 2 in
  let n = 37 in
  let x = Ssa.final m ~n ~x0:[| 0.3 |] ~policy:(constant 1.) ~tmax:3. rng in
  let count = x.(0) *. float_of_int n in
  Alcotest.(check (float 1e-9)) "integral count" (Float.round count) count

let test_trajectory_consistency () =
  let m = bd_model () in
  let rng = Rng.create 3 in
  let traj = Ssa.trajectory m ~n:30 ~x0:[| 0.5 |] ~policy:(constant 1.) ~tmax:2. rng in
  Alcotest.(check (float 1e-12)) "starts at x0" 0.5 (Ode.Traj.first traj).(0);
  Alcotest.(check (float 1e-9)) "starts at 0" 0. (Ode.Traj.t0 traj);
  Alcotest.(check (float 1e-9)) "ends at tmax" 2. (Ode.Traj.t1 traj);
  (* consecutive states differ by exactly one jump of 1/n *)
  let states = traj.Ode.Traj.states in
  for i = 1 to Array.length states - 2 do
    let diff = Float.abs (states.(i).(0) -. states.(i - 1).(0)) in
    Alcotest.(check (float 1e-9)) "unit jump" (1. /. 30.) diff
  done

let test_sampled_matches_trajectory () =
  let m = bd_model () in
  let times = [| 0.; 0.5; 1.; 1.5; 2. |] in
  let t1 = Ssa.trajectory m ~n:40 ~x0:[| 0.5 |] ~policy:(constant 1.) ~tmax:2. (Rng.create 7) in
  let s = Ssa.sampled m ~n:40 ~x0:[| 0.5 |] ~policy:(constant 1.) ~times (Rng.create 7) in
  (* same seed => same path; sampled values must lie on the trajectory *)
  Array.iteri
    (fun i t ->
      (* piecewise-constant: the sampled state equals the trajectory
         state at the last event <= t; Traj.at interpolates linearly so
         compare only at event-free exact sample times via state jump
         bound 1/n *)
      let on_traj = Ode.Traj.at t1 t in
      Alcotest.(check bool)
        (Printf.sprintf "sample %d near path" i)
        true
        (Float.abs (on_traj.(0) -. s.(i).(0)) <= 1. /. 40. +. 1e-9))
    times

let test_sampled_validation () =
  let m = bd_model () in
  Alcotest.check_raises "times must increase"
    (Invalid_argument "Ssa.sampled: times not increasing") (fun () ->
      ignore
        (Ssa.sampled m ~n:10 ~x0:[| 0.5 |] ~policy:(constant 1.)
           ~times:[| 1.; 0.5 |] (Rng.create 1)))

let test_seed_determinism () =
  let m = bd_model () in
  let run seed =
    Ssa.final m ~n:50 ~x0:[| 0.5 |] ~policy:(constant 1.5) ~tmax:4. (Rng.create seed)
  in
  Alcotest.(check bool) "same seed same result" true
    (Vec.approx_equal (run 5) (run 5));
  Alcotest.(check bool) "different seeds differ" false
    (Vec.approx_equal (run 5) (run 6))

let test_event_count_scales_with_n () =
  let m = bd_model () in
  let count n = Ssa.count_events m ~n ~x0:[| 0.5 |] ~policy:(constant 1.) ~tmax:10. (Rng.create 11) in
  let c100 = count 100 and c1000 = count 1000 in
  let ratio = float_of_int c1000 /. float_of_int c100 in
  Alcotest.(check bool) "events scale ~linearly in N" true (ratio > 7. && ratio < 13.)

let test_policy_jump_channel_fires () =
  let m = bd_model () in
  let jumps = ref 0 in
  let policy =
    {
      Policy.name = "counting";
      instantiate =
        (fun () ->
          {
            Policy.theta = (fun _ _ -> [| 1. |]);
            jump_rate = (fun _ _ -> 50.);
            do_jump = (fun _ _ _ -> incr jumps);
            notify = (fun _ _ -> ());
          });
    }
  in
  let _ = Ssa.final m ~n:20 ~x0:[| 0.5 |] ~policy ~tmax:2. (Rng.create 13) in
  (* expect roughly rate * tmax = 100 policy jumps *)
  Alcotest.(check bool) "policy jumps fired" true (!jumps > 50 && !jumps < 160)

let test_negative_count_detected () =
  (* a deliberately broken model whose death rate does not vanish at 0 *)
  let bad =
    Population.make ~name:"bad" ~var_names:[| "X" |] ~theta_names:[||]
      ~theta:(Optim.Box.make [||] [||])
      [ { Population.name = "death"; change = [| -1. |]; rate = (fun _ _ -> 1.) } ]
  in
  let policy = Policy.constant [||] in
  Alcotest.(check bool) "raises on negative count" true
    (try
       let _ = Ssa.final bad ~n:3 ~x0:[| 0.4 |] ~policy ~tmax:100. (Rng.create 1) in
       false
     with Failure _ -> true)

let test_time_average () =
  let m = bd_model () in
  (* stationary mean of x is theta/(1+theta) = 2/3 for theta = 2 *)
  let avg =
    Ssa.time_average m ~n:300 ~x0:[| 0.1 |] ~policy:(constant 2.) ~tmax:200.
      ~warmup:20. ~reward:(fun x -> x.(0)) (Rng.create 17)
  in
  Alcotest.(check bool) "near fluid equilibrium" true (Float.abs (avg -. (2. /. 3.)) < 0.03)

let suites =
  [
    ( "ssa",
      [
        Alcotest.test_case "states stay in simplex" `Quick test_final_in_simplex;
        Alcotest.test_case "counts integral" `Quick test_counts_are_integral;
        Alcotest.test_case "trajectory consistency" `Quick test_trajectory_consistency;
        Alcotest.test_case "sampled matches trajectory" `Quick test_sampled_matches_trajectory;
        Alcotest.test_case "sampled validation" `Quick test_sampled_validation;
        Alcotest.test_case "seed determinism" `Quick test_seed_determinism;
        Alcotest.test_case "event count scaling" `Slow test_event_count_scales_with_n;
        Alcotest.test_case "policy jump channel" `Quick test_policy_jump_channel_fires;
        Alcotest.test_case "negative count detection" `Quick test_negative_count_detected;
        Alcotest.test_case "stationary time average" `Slow test_time_average;
      ] );
  ]
