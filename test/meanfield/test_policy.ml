open Umf_numerics
open Umf_meanfield

let test_constant () =
  let p = Policy.constant [| 3. |] in
  let inst = p.Policy.instantiate () in
  Alcotest.(check (float 1e-12)) "theta" 3. (inst.Policy.theta 1. [| 0.5 |]).(0);
  Alcotest.(check (float 1e-12)) "no jumps" 0. (inst.Policy.jump_rate 1. [| 0.5 |])

let test_feedback () =
  let p = Policy.feedback "fb" (fun t x -> [| t +. x.(0) |]) in
  let inst = p.Policy.instantiate () in
  Alcotest.(check (float 1e-12)) "theta(t,x)" 1.5 (inst.Policy.theta 1. [| 0.5 |]).(0)

let test_hysteresis_switching () =
  let p =
    Policy.hysteresis ~name:"h" ~high:[| 10. |] ~low:[| 1. |]
      ~drop_if:(fun x -> x.(0) < 0.5)
      ~rise_if:(fun x -> x.(0) > 0.85)
      ~init:`High
  in
  let inst = p.Policy.instantiate () in
  let theta x = (inst.Policy.theta 0. x).(0) in
  Alcotest.(check (float 1e-12)) "starts high" 10. (theta [| 0.7 |]);
  (* observe a state below the drop threshold *)
  inst.Policy.notify 1. [| 0.4 |];
  Alcotest.(check (float 1e-12)) "dropped" 1. (theta [| 0.4 |]);
  (* mid-band states do not switch back *)
  inst.Policy.notify 2. [| 0.7 |];
  Alcotest.(check (float 1e-12)) "stays low in band" 1. (theta [| 0.7 |]);
  inst.Policy.notify 3. [| 0.9 |];
  Alcotest.(check (float 1e-12)) "rises" 10. (theta [| 0.9 |])

let test_hysteresis_instances_independent () =
  let p =
    Policy.hysteresis ~name:"h" ~high:[| 10. |] ~low:[| 1. |]
      ~drop_if:(fun x -> x.(0) < 0.5)
      ~rise_if:(fun x -> x.(0) > 0.85)
      ~init:`High
  in
  let i1 = p.Policy.instantiate () and i2 = p.Policy.instantiate () in
  i1.Policy.notify 0. [| 0.1 |];
  Alcotest.(check (float 1e-12)) "i1 dropped" 1. (i1.Policy.theta 0. [| 0.1 |]).(0);
  Alcotest.(check (float 1e-12)) "i2 unaffected" 10. (i2.Policy.theta 0. [| 0.1 |]).(0)

let test_jump_redraw () =
  let box = Optim.Box.make [| 1. |] [| 10. |] in
  let p =
    Policy.jump_redraw ~name:"j"
      ~rate:(fun _t x -> 5. *. x.(0))
      ~redraw:Policy.uniform_redraw ~box ~init:[| 5. |]
  in
  let inst = p.Policy.instantiate () in
  Alcotest.(check (float 1e-12)) "init theta" 5. (inst.Policy.theta 0. [| 0.2 |]).(0);
  Alcotest.(check (float 1e-12)) "rate" 1. (inst.Policy.jump_rate 0. [| 0.2 |]);
  let rng = Rng.create 3 in
  inst.Policy.do_jump rng 0.1 [| 0.2 |];
  let v = (inst.Policy.theta 0.2 [| 0.2 |]).(0) in
  Alcotest.(check bool) "redrawn inside box" true (v >= 1. && v <= 10.)

let test_jump_redraw_init_validation () =
  let box = Optim.Box.make [| 1. |] [| 10. |] in
  Alcotest.check_raises "init outside"
    (Invalid_argument "Policy.jump_redraw: init outside box") (fun () ->
      ignore
        (Policy.jump_redraw ~name:"j"
           ~rate:(fun _ _ -> 1.)
           ~redraw:Policy.uniform_redraw ~box ~init:[| 0. |]))

let test_uniform_redraw_coverage () =
  let box = Optim.Box.make [| 0.; 5. |] [| 1.; 6. |] in
  let rng = Rng.create 9 in
  for _ = 1 to 200 do
    let v = Policy.uniform_redraw rng box in
    Alcotest.(check bool) "inside" true (Optim.Box.mem v box)
  done

let suites =
  [
    ( "policy",
      [
        Alcotest.test_case "constant" `Quick test_constant;
        Alcotest.test_case "feedback" `Quick test_feedback;
        Alcotest.test_case "hysteresis switching" `Quick test_hysteresis_switching;
        Alcotest.test_case "instances independent" `Quick test_hysteresis_instances_independent;
        Alcotest.test_case "jump redraw" `Quick test_jump_redraw;
        Alcotest.test_case "jump redraw validation" `Quick test_jump_redraw_init_validation;
        Alcotest.test_case "uniform redraw coverage" `Quick test_uniform_redraw_coverage;
      ] );
  ]
