open Umf_ctmc

let check_float = Alcotest.(check (float 1e-12))

let sample_path () =
  Path.make ~times:[| 0.; 1.; 3. |] ~states:[| 0; 1; 0 |] ~horizon:4.

let test_state_at () =
  let p = sample_path () in
  Alcotest.(check int) "initial" 0 (Path.state_at p 0.);
  Alcotest.(check int) "mid first" 0 (Path.state_at p 0.5);
  Alcotest.(check int) "after first jump" 1 (Path.state_at p 1.5);
  Alcotest.(check int) "after second jump" 0 (Path.state_at p 3.5);
  Alcotest.(check int) "before start clamps" 0 (Path.state_at p (-1.));
  Alcotest.(check int) "after horizon clamps" 0 (Path.state_at p 100.)

let test_time_average () =
  let p = sample_path () in
  (* state 1 occupied on [1,3) out of [0,4): fraction 1/2 *)
  check_float "fraction in state 1" 0.5
    (Path.time_average p (fun s -> if s = 1 then 1. else 0.))

let test_occupancy () =
  let p = sample_path () in
  let occ = Path.occupancy p 2 in
  check_float "state 0" 0.5 occ.(0);
  check_float "state 1" 0.5 occ.(1);
  check_float "sums to 1" 1. (occ.(0) +. occ.(1))

let test_counts () =
  let p = sample_path () in
  Alcotest.(check int) "length" 3 (Path.length p);
  Alcotest.(check int) "jumps" 2 (Path.jumps p);
  Alcotest.(check int) "final" 0 (Path.final_state p)

let test_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Path.make: empty path")
    (fun () -> ignore (Path.make ~times:[||] ~states:[||] ~horizon:1.));
  Alcotest.check_raises "mismatch" (Invalid_argument "Path.make: length mismatch")
    (fun () -> ignore (Path.make ~times:[| 0. |] ~states:[| 0; 1 |] ~horizon:1.));
  Alcotest.check_raises "horizon" (Invalid_argument "Path.make: horizon before last jump")
    (fun () -> ignore (Path.make ~times:[| 0.; 2. |] ~states:[| 0; 1 |] ~horizon:1.))

let test_single_state_path () =
  let p = Path.make ~times:[| 0. |] ~states:[| 3 |] ~horizon:10. in
  Alcotest.(check int) "constant path" 3 (Path.state_at p 5.);
  check_float "reward" 7. (Path.time_average p (fun _ -> 7.))

let suites =
  [
    ( "path",
      [
        Alcotest.test_case "state_at" `Quick test_state_at;
        Alcotest.test_case "time_average" `Quick test_time_average;
        Alcotest.test_case "occupancy" `Quick test_occupancy;
        Alcotest.test_case "lengths and jumps" `Quick test_counts;
        Alcotest.test_case "validation" `Quick test_validation;
        Alcotest.test_case "single state path" `Quick test_single_state_path;
      ] );
  ]
