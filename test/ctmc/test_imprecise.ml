open Umf_numerics
open Umf_ctmc

(* this suite doubles as the bit-compat gate for the deprecated
   fixed-grid wrappers (lower/upper_expectation, *_series,
   probability_bounds) against the certified sweep API they forward
   to *)
[@@@alert "-deprecated"]

(* single-station bike sharing chain (paper Sec. II example):
   states 0..cap bikes; arrivals take a bike at rate θa, returns add one
   at rate θr *)
let bike_station ~cap ~theta_box =
  let trans = ref [] in
  for k = 0 to cap do
    if k > 0 then
      trans := { Imprecise_ctmc.src = k; dst = k - 1; rate = (fun th -> th.(0)) } :: !trans;
    if k < cap then
      trans := { Imprecise_ctmc.src = k; dst = k + 1; rate = (fun th -> th.(1)) } :: !trans
  done;
  Imprecise_ctmc.make ~n:(cap + 1) ~theta:theta_box !trans

let box2 a b c d = Optim.Box.make [| a; c |] [| b; d |]

let test_generator_at () =
  let m = bike_station ~cap:3 ~theta_box:(box2 1. 2. 1. 3.) in
  let g = Imprecise_ctmc.generator_at m [| 1.5; 2. |] in
  Alcotest.(check (float 1e-12)) "interior exit" 3.5 (Generator.exit_rate g 1);
  Alcotest.(check (float 1e-12)) "boundary exit (no departures at 0)" 2.
    (Generator.exit_rate g 0)

let test_degenerate_box_matches_precise () =
  (* point box: lower = upper = exact transient expectation *)
  let theta = [| 1.2; 0.8 |] in
  let m = bike_station ~cap:4 ~theta_box:(box2 1.2 1.2 0.8 0.8) in
  let g = Imprecise_ctmc.generator_at m theta in
  let h = Array.init 5 float_of_int in
  let lo = Imprecise_ctmc.lower_expectation ~steps_per_unit:2000 m ~h ~horizon:1. in
  let hi = Imprecise_ctmc.upper_expectation ~steps_per_unit:2000 m ~h ~horizon:1. in
  let p0 = [| 0.; 0.; 1.; 0.; 0. |] in
  let exact = Transient.expectation g ~p0 ~t:1. (fun s -> h.(s)) in
  Alcotest.(check (float 1e-3)) "lower = precise" exact lo.(2);
  Alcotest.(check (float 1e-3)) "upper = precise" exact hi.(2);
  Alcotest.(check bool) "lower <= upper" true (lo.(2) <= hi.(2) +. 1e-9)

let test_bounds_order_and_nesting () =
  let narrow = bike_station ~cap:4 ~theta_box:(box2 1. 1.5 1. 1.5) in
  let wide = bike_station ~cap:4 ~theta_box:(box2 0.5 2. 0.5 2.) in
  let h = Array.init 5 float_of_int in
  let lo_n = Imprecise_ctmc.lower_expectation narrow ~h ~horizon:2. in
  let hi_n = Imprecise_ctmc.upper_expectation narrow ~h ~horizon:2. in
  let lo_w = Imprecise_ctmc.lower_expectation wide ~h ~horizon:2. in
  let hi_w = Imprecise_ctmc.upper_expectation wide ~h ~horizon:2. in
  for x = 0 to 4 do
    Alcotest.(check bool) "lower <= upper" true (lo_n.(x) <= hi_n.(x) +. 1e-9);
    Alcotest.(check bool) "wider box gives wider bounds (lo)" true
      (lo_w.(x) <= lo_n.(x) +. 1e-6);
    Alcotest.(check bool) "wider box gives wider bounds (hi)" true
      (hi_w.(x) >= hi_n.(x) -. 1e-6)
  done

let test_horizon_zero_is_reward () =
  let m = bike_station ~cap:3 ~theta_box:(box2 1. 2. 1. 2.) in
  let h = [| 5.; 1.; 0.; 2. |] in
  let lo = Imprecise_ctmc.lower_expectation m ~h ~horizon:0. in
  Alcotest.(check bool) "g_0 = h" true (Vec.approx_equal lo h)

let test_probability_bounds () =
  let m = bike_station ~cap:3 ~theta_box:(box2 1. 3. 1. 3.) in
  let lo, hi = Imprecise_ctmc.probability_bounds m ~state:0 ~horizon:1. ~x0:2 in
  Alcotest.(check bool) "probabilities in [0,1]" true
    (lo >= -1e-9 && hi <= 1. +. 1e-9 && lo <= hi)

let test_simulation_within_bounds () =
  (* Monte-Carlo mean under any adapted policy must lie within the
     lower/upper expectation bounds *)
  let box = box2 1. 3. 1. 3. in
  let m = bike_station ~cap:5 ~theta_box:box in
  let h = Array.init 6 float_of_int in
  let horizon = 2. in
  let lo = Imprecise_ctmc.lower_expectation m ~h ~horizon in
  let hi = Imprecise_ctmc.upper_expectation m ~h ~horizon in
  let policies =
    [
      ("constant mid", Imprecise_ctmc.constant_policy [| 2.; 2. |]);
      ("time switch", fun ~t ~x:_ -> if t < 1. then [| 1.; 3. |] else [| 3.; 1. |]);
      ("state feedback", fun ~t:_ ~x -> if x > 2 then [| 3.; 1. |] else [| 1.; 3. |]);
    ]
  in
  List.iter
    (fun (name, policy) ->
      let rng = Rng.create 77 in
      let acc = Stats.Running.create () in
      for _ = 1 to 600 do
        let p = Imprecise_ctmc.simulate rng m policy ~x0:3 ~tmax:horizon in
        Stats.Running.add acc h.(Path.final_state p)
      done;
      let mean = Stats.Running.mean acc in
      let se = Stats.Running.std acc /. sqrt 600. in
      let margin = (4. *. se) +. 0.02 in
      Alcotest.(check bool)
        (name ^ " above lower") true
        (mean >= lo.(3) -. margin);
      Alcotest.(check bool)
        (name ^ " below upper") true
        (mean <= hi.(3) +. margin))
    policies

let test_coarse_grid_auto_refined () =
  (* regression for the unstable backward sweep: steps_per_unit:1 gives
     dt·λ = 6 — the old explicit Euler diverged (values far outside
     [min h, max h]); the stability guard now refines the grid and the
     envelope invariant holds *)
  let m = bike_station ~cap:4 ~theta_box:(box2 1. 3. 1. 3.) in
  let h = Array.init 5 float_of_int in
  let lo = Imprecise_ctmc.lower_expectation ~steps_per_unit:1 m ~h ~horizon:2. in
  let hi = Imprecise_ctmc.upper_expectation ~steps_per_unit:1 m ~h ~horizon:2. in
  for x = 0 to 4 do
    Alcotest.(check bool) "lower in [min h, max h]" true
      (lo.(x) >= 0. && lo.(x) <= 4.);
    Alcotest.(check bool) "upper in [min h, max h]" true
      (hi.(x) >= 0. && hi.(x) <= 4.);
    Alcotest.(check bool) "lower <= upper" true (lo.(x) <= hi.(x) +. 1e-9)
  done;
  (* and the refined coarse grid still lands near the accurate sweep
     (first-order Euler at dt·λ = 1, so only O(dt) accuracy) *)
  let ref_lo = Imprecise_ctmc.lower_expectation ~steps_per_unit:2000 m ~h ~horizon:2. in
  Alcotest.(check bool) "coarse refined close to accurate" true
    (Vec.dist_inf lo ref_lo < 0.2)

let test_series_matches_single_horizon () =
  let m = bike_station ~cap:4 ~theta_box:(box2 1. 2. 1. 3.) in
  let h = Array.init 5 float_of_int in
  let series = Imprecise_ctmc.lower_series m ~h ~times:[| 2. |] in
  let single = Imprecise_ctmc.lower_expectation m ~h ~horizon:2. in
  Alcotest.(check bool) "singleton series = single horizon" true
    (Vec.approx_equal ~tol:0. series.(0) single);
  (* multi-time series is monotone in nesting: each snapshot stays in
     the envelope *)
  let times = [| 0.5; 1.; 2. |] in
  let los = Imprecise_ctmc.lower_series m ~h ~times in
  let his = Imprecise_ctmc.upper_series m ~h ~times in
  Array.iteri
    (fun j _ ->
      for x = 0 to 4 do
        Alcotest.(check bool) "lo <= hi" true (los.(j).(x) <= his.(j).(x) +. 1e-9)
      done)
    times;
  Alcotest.check_raises "times must increase"
    (Invalid_argument "Imprecise_ctmc: times not increasing") (fun () ->
      ignore (Imprecise_ctmc.lower_series m ~h ~times:[| 1.; 0.5 |]))

let path_equal (a : Path.t) (b : Path.t) =
  a.Path.times = b.Path.times && a.Path.states = b.Path.states
  && a.Path.horizon = b.Path.horizon

let test_simulate_cache_bitwise () =
  (* the cached-rows fast path, the scratch-buffer overflow path
     (cache:0) and the rebuild-a-generator-per-jump reference must
     produce draw-for-draw identical paths *)
  let box = box2 1. 3. 1. 3. in
  let m = bike_station ~cap:5 ~theta_box:box in
  let policies =
    [
      ("constant", Imprecise_ctmc.constant_policy [| 2.; 2. |]);
      ("time switch", fun ~t ~x:_ -> if t < 1. then [| 1.; 3. |] else [| 3.; 1. |]);
      ("state feedback", fun ~t:_ ~x -> if x > 2 then [| 3.; 1. |] else [| 1.; 3. |]);
    ]
  in
  List.iter
    (fun (name, policy) ->
      let cached =
        Imprecise_ctmc.simulate (Rng.create 123) m policy ~x0:3 ~tmax:4.
      in
      let uncached =
        Imprecise_ctmc.simulate ~cache:0 (Rng.create 123) m policy ~x0:3
          ~tmax:4.
      in
      let reference =
        Simulate.run_imprecise
          ~rate_bound:(Imprecise_ctmc.max_exit_bound m *. 1.000001)
          (Rng.create 123)
          (fun ~t ~x ->
            Imprecise_ctmc.generator_at m
              (Optim.Box.clamp box (policy ~t ~x)))
          ~x0:3 ~tmax:4.
      in
      Alcotest.(check bool) (name ^ ": cache = no cache") true
        (path_equal cached uncached);
      Alcotest.(check bool) (name ^ ": cache = generator rebuild") true
        (path_equal cached reference))
    policies

let test_negative_rate_detected () =
  let m =
    Imprecise_ctmc.make ~n:2
      ~theta:(Optim.Box.make [| -1. |] [| 1. |])
      [ { Imprecise_ctmc.src = 0; dst = 1; rate = (fun th -> th.(0)) } ]
  in
  Alcotest.check_raises "negative rate"
    (Invalid_argument "Imprecise_ctmc: negative rate at theta") (fun () ->
      ignore (Imprecise_ctmc.generator_at m [| -0.5 |]))

let suites =
  [
    ( "imprecise_ctmc",
      [
        Alcotest.test_case "generator at theta" `Quick test_generator_at;
        Alcotest.test_case "degenerate box = precise" `Quick test_degenerate_box_matches_precise;
        Alcotest.test_case "bound ordering and nesting" `Quick test_bounds_order_and_nesting;
        Alcotest.test_case "zero horizon" `Quick test_horizon_zero_is_reward;
        Alcotest.test_case "probability bounds" `Quick test_probability_bounds;
        Alcotest.test_case "simulations within bounds" `Slow test_simulation_within_bounds;
        Alcotest.test_case "coarse grid auto-refined" `Quick
          test_coarse_grid_auto_refined;
        Alcotest.test_case "series matches single horizon" `Quick
          test_series_matches_single_horizon;
        Alcotest.test_case "simulate cache bit-identical" `Quick
          test_simulate_cache_bitwise;
        Alcotest.test_case "negative rate detection" `Quick test_negative_rate_detected;
      ] );
  ]
