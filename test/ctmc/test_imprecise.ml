open Umf_numerics
open Umf_ctmc

(* single-station bike sharing chain (paper Sec. II example):
   states 0..cap bikes; arrivals take a bike at rate θa, returns add one
   at rate θr *)
let bike_station ~cap ~theta_box =
  let trans = ref [] in
  for k = 0 to cap do
    if k > 0 then
      trans := { Imprecise_ctmc.src = k; dst = k - 1; rate = (fun th -> th.(0)) } :: !trans;
    if k < cap then
      trans := { Imprecise_ctmc.src = k; dst = k + 1; rate = (fun th -> th.(1)) } :: !trans
  done;
  Imprecise_ctmc.make ~n:(cap + 1) ~theta:theta_box !trans

let box2 a b c d = Optim.Box.make [| a; c |] [| b; d |]

let test_generator_at () =
  let m = bike_station ~cap:3 ~theta_box:(box2 1. 2. 1. 3.) in
  let g = Imprecise_ctmc.generator_at m [| 1.5; 2. |] in
  Alcotest.(check (float 1e-12)) "interior exit" 3.5 (Generator.exit_rate g 1);
  Alcotest.(check (float 1e-12)) "boundary exit (no departures at 0)" 2.
    (Generator.exit_rate g 0)

let test_degenerate_box_matches_precise () =
  (* point box: lower = upper = exact transient expectation *)
  let theta = [| 1.2; 0.8 |] in
  let m = bike_station ~cap:4 ~theta_box:(box2 1.2 1.2 0.8 0.8) in
  let g = Imprecise_ctmc.generator_at m theta in
  let h = Array.init 5 float_of_int in
  let lo = Imprecise_ctmc.lower_expectation ~steps_per_unit:2000 m ~h ~horizon:1. in
  let hi = Imprecise_ctmc.upper_expectation ~steps_per_unit:2000 m ~h ~horizon:1. in
  let p0 = [| 0.; 0.; 1.; 0.; 0. |] in
  let exact = Transient.expectation g ~p0 ~t:1. (fun s -> h.(s)) in
  Alcotest.(check (float 1e-3)) "lower = precise" exact lo.(2);
  Alcotest.(check (float 1e-3)) "upper = precise" exact hi.(2);
  Alcotest.(check bool) "lower <= upper" true (lo.(2) <= hi.(2) +. 1e-9)

let test_bounds_order_and_nesting () =
  let narrow = bike_station ~cap:4 ~theta_box:(box2 1. 1.5 1. 1.5) in
  let wide = bike_station ~cap:4 ~theta_box:(box2 0.5 2. 0.5 2.) in
  let h = Array.init 5 float_of_int in
  let lo_n = Imprecise_ctmc.lower_expectation narrow ~h ~horizon:2. in
  let hi_n = Imprecise_ctmc.upper_expectation narrow ~h ~horizon:2. in
  let lo_w = Imprecise_ctmc.lower_expectation wide ~h ~horizon:2. in
  let hi_w = Imprecise_ctmc.upper_expectation wide ~h ~horizon:2. in
  for x = 0 to 4 do
    Alcotest.(check bool) "lower <= upper" true (lo_n.(x) <= hi_n.(x) +. 1e-9);
    Alcotest.(check bool) "wider box gives wider bounds (lo)" true
      (lo_w.(x) <= lo_n.(x) +. 1e-6);
    Alcotest.(check bool) "wider box gives wider bounds (hi)" true
      (hi_w.(x) >= hi_n.(x) -. 1e-6)
  done

let test_horizon_zero_is_reward () =
  let m = bike_station ~cap:3 ~theta_box:(box2 1. 2. 1. 2.) in
  let h = [| 5.; 1.; 0.; 2. |] in
  let lo = Imprecise_ctmc.lower_expectation m ~h ~horizon:0. in
  Alcotest.(check bool) "g_0 = h" true (Vec.approx_equal lo h)

let test_probability_bounds () =
  let m = bike_station ~cap:3 ~theta_box:(box2 1. 3. 1. 3.) in
  let lo, hi = Imprecise_ctmc.probability_bounds m ~state:0 ~horizon:1. ~x0:2 in
  Alcotest.(check bool) "probabilities in [0,1]" true
    (lo >= -1e-9 && hi <= 1. +. 1e-9 && lo <= hi)

let test_simulation_within_bounds () =
  (* Monte-Carlo mean under any adapted policy must lie within the
     lower/upper expectation bounds *)
  let box = box2 1. 3. 1. 3. in
  let m = bike_station ~cap:5 ~theta_box:box in
  let h = Array.init 6 float_of_int in
  let horizon = 2. in
  let lo = Imprecise_ctmc.lower_expectation m ~h ~horizon in
  let hi = Imprecise_ctmc.upper_expectation m ~h ~horizon in
  let policies =
    [
      ("constant mid", Imprecise_ctmc.constant_policy [| 2.; 2. |]);
      ("time switch", fun ~t ~x:_ -> if t < 1. then [| 1.; 3. |] else [| 3.; 1. |]);
      ("state feedback", fun ~t:_ ~x -> if x > 2 then [| 3.; 1. |] else [| 1.; 3. |]);
    ]
  in
  List.iter
    (fun (name, policy) ->
      let rng = Rng.create 77 in
      let acc = Stats.Running.create () in
      for _ = 1 to 600 do
        let p = Imprecise_ctmc.simulate rng m policy ~x0:3 ~tmax:horizon in
        Stats.Running.add acc h.(Path.final_state p)
      done;
      let mean = Stats.Running.mean acc in
      let se = Stats.Running.std acc /. sqrt 600. in
      let margin = (4. *. se) +. 0.02 in
      Alcotest.(check bool)
        (name ^ " above lower") true
        (mean >= lo.(3) -. margin);
      Alcotest.(check bool)
        (name ^ " below upper") true
        (mean <= hi.(3) +. margin))
    policies

let test_negative_rate_detected () =
  let m =
    Imprecise_ctmc.make ~n:2
      ~theta:(Optim.Box.make [| -1. |] [| 1. |])
      [ { Imprecise_ctmc.src = 0; dst = 1; rate = (fun th -> th.(0)) } ]
  in
  Alcotest.check_raises "negative rate"
    (Invalid_argument "Imprecise_ctmc: negative rate at theta") (fun () ->
      ignore (Imprecise_ctmc.generator_at m [| -0.5 |]))

let suites =
  [
    ( "imprecise_ctmc",
      [
        Alcotest.test_case "generator at theta" `Quick test_generator_at;
        Alcotest.test_case "degenerate box = precise" `Quick test_degenerate_box_matches_precise;
        Alcotest.test_case "bound ordering and nesting" `Quick test_bounds_order_and_nesting;
        Alcotest.test_case "zero horizon" `Quick test_horizon_zero_is_reward;
        Alcotest.test_case "probability bounds" `Quick test_probability_bounds;
        Alcotest.test_case "simulations within bounds" `Slow test_simulation_within_bounds;
        Alcotest.test_case "negative rate detection" `Quick test_negative_rate_detected;
      ] );
  ]
