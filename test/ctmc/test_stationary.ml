open Umf_numerics
open Umf_ctmc

let test_two_state () =
  let g = Generator.make ~n:2 [ (0, 1, 2.); (1, 0, 3.) ] in
  let pi = Stationary.gth g in
  Alcotest.(check (float 1e-12)) "pi0" 0.6 pi.(0);
  Alcotest.(check (float 1e-12)) "pi1" 0.4 pi.(1)

let test_birth_death () =
  (* M/M/1/K with arrival 1, service 2: pi_k proportional to (1/2)^k *)
  let k = 5 in
  let trans = ref [] in
  for i = 0 to k - 1 do
    trans := (i, i + 1, 1.) :: (i + 1, i, 2.) :: !trans
  done;
  let g = Generator.make ~n:(k + 1) !trans in
  let pi = Stationary.gth g in
  let rho = 0.5 in
  let z = (1. -. (rho ** float_of_int (k + 1))) /. (1. -. rho) in
  for i = 0 to k do
    Alcotest.(check (float 1e-12))
      (Printf.sprintf "pi%d" i)
      ((rho ** float_of_int i) /. z)
      pi.(i)
  done

let test_gth_vs_power () =
  let g =
    Generator.make ~n:4
      [ (0, 1, 1.); (1, 2, 0.5); (2, 3, 2.); (3, 0, 1.5); (1, 0, 0.2); (2, 0, 0.1) ]
  in
  let pi1 = Stationary.gth g in
  let pi2 = Stationary.power_iteration ~tol:1e-13 g in
  Alcotest.(check bool) "methods agree" true (Vec.approx_equal ~tol:1e-8 pi1 pi2)

let test_stationarity_equation () =
  let g =
    Generator.make ~n:5
      [ (0, 1, 1.3); (1, 2, 0.7); (2, 3, 2.1); (3, 4, 0.4); (4, 0, 1.1);
        (2, 0, 0.5); (3, 1, 0.9) ]
  in
  let pi = Stationary.gth g in
  let residual = Mat.tmulv (Generator.to_dense g) pi in
  Alcotest.(check bool) "pi Q = 0" true (Vec.norm_inf residual < 1e-12);
  Alcotest.(check (float 1e-12)) "normalised" 1. (Vec.sum pi)

let test_random_irreducible_gth_vs_power () =
  (* a ring keeps every chain irreducible; extra random edges vary the
     structure across seeds *)
  let rng = Rng.create 2024 in
  for trial = 1 to 8 do
    let n = 5 + Rng.int rng 20 in
    let trans = ref [] in
    for i = 0 to n - 1 do
      trans := (i, (i + 1) mod n, 0.2 +. Rng.float rng) :: !trans
    done;
    for _ = 1 to n do
      let i = Rng.int rng n and j = Rng.int rng n in
      if i <> j then trans := (i, j, 0.05 +. Rng.float rng) :: !trans
    done;
    let g = Generator.make ~n !trans in
    let pi1 = Stationary.gth g in
    let pi2 = Stationary.power_iteration ~tol:1e-13 g in
    Alcotest.(check bool)
      (Printf.sprintf "trial %d (n=%d)" trial n)
      true
      (Vec.approx_equal ~tol:1e-8 pi1 pi2)
  done

let test_power_accepts_pool () =
  let g =
    Generator.make ~n:4
      [ (0, 1, 1.); (1, 2, 0.5); (2, 3, 2.); (3, 0, 1.5); (1, 0, 0.2) ]
  in
  let seq = Stationary.power_iteration ~tol:1e-13 g in
  let par =
    Umf_runtime.Runtime.Pool.with_pool ~domains:2 (fun pool ->
        Stationary.power_iteration ~pool ~tol:1e-13 g)
  in
  Array.iteri
    (fun i x ->
      if Int64.bits_of_float x <> Int64.bits_of_float par.(i) then
        Alcotest.failf "pooled power iteration differs at %d" i)
    seq

let test_reducible_detected () =
  (* two disconnected components *)
  let g = Generator.make ~n:4 [ (0, 1, 1.); (1, 0, 1.); (2, 3, 1.); (3, 2, 1.) ] in
  Alcotest.check_raises "reducible" (Failure "Stationary.gth: reducible chain")
    (fun () -> ignore (Stationary.gth g))

let test_stiff_chain () =
  (* rates spanning 8 orders of magnitude: GTH stays accurate *)
  let g = Generator.make ~n:3 [ (0, 1, 1e-4); (1, 2, 1e4); (2, 0, 1.) ] in
  let pi = Stationary.gth g in
  let residual = Mat.tmulv (Generator.to_dense g) pi in
  Alcotest.(check bool) "pi Q = 0 (stiff)" true
    (Vec.norm_inf residual /. Vec.norm_inf pi < 1e-10)

let suites =
  [
    ( "stationary",
      [
        Alcotest.test_case "two-state" `Quick test_two_state;
        Alcotest.test_case "birth-death closed form" `Quick test_birth_death;
        Alcotest.test_case "gth vs power iteration" `Quick test_gth_vs_power;
        Alcotest.test_case "random irreducible gth vs power" `Quick
          test_random_irreducible_gth_vs_power;
        Alcotest.test_case "power iteration with pool" `Quick
          test_power_accepts_pool;
        Alcotest.test_case "stationarity equation" `Quick test_stationarity_equation;
        Alcotest.test_case "reducible detection" `Quick test_reducible_detected;
        Alcotest.test_case "stiff chain" `Quick test_stiff_chain;
      ] );
  ]
