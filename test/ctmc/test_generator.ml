open Umf_numerics
open Umf_ctmc

let check_float = Alcotest.(check (float 1e-12))

(* two-state chain: 0 -> 1 at rate 2, 1 -> 0 at rate 3 *)
let two_state () = Generator.make ~n:2 [ (0, 1, 2.); (1, 0, 3.) ]

let test_make_basic () =
  let g = two_state () in
  Alcotest.(check int) "n" 2 (Generator.n_states g);
  check_float "exit 0" 2. (Generator.exit_rate g 0);
  check_float "exit 1" 3. (Generator.exit_rate g 1);
  check_float "max exit" 3. (Generator.max_exit_rate g)

let test_make_merges_duplicates () =
  let g = Generator.make ~n:2 [ (0, 1, 1.); (0, 1, 1.5) ] in
  check_float "merged" 2.5 (Generator.exit_rate g 0);
  Alcotest.(check int) "single arc" 1 (Array.length (Generator.outgoing g 0))

let test_make_drops_zero () =
  let g = Generator.make ~n:2 [ (0, 1, 0.) ] in
  Alcotest.(check int) "dropped" 0 (Array.length (Generator.outgoing g 0))

let test_make_validation () =
  Alcotest.check_raises "self loop" (Invalid_argument "Generator.make: self loop")
    (fun () -> ignore (Generator.make ~n:2 [ (0, 0, 1.) ]));
  Alcotest.check_raises "negative" (Invalid_argument "Generator.make: negative rate")
    (fun () -> ignore (Generator.make ~n:2 [ (0, 1, -1.) ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Generator.make: state out of range") (fun () ->
      ignore (Generator.make ~n:2 [ (0, 2, 1.) ]))

let test_to_dense_row_sums () =
  let g = two_state () in
  let q = Generator.to_dense g in
  check_float "row 0 sums to 0" 0. (Vec.sum (Mat.row q 0));
  check_float "row 1 sums to 0" 0. (Vec.sum (Mat.row q 1));
  check_float "q01" 2. (Mat.get q 0 1);
  check_float "q00" (-2.) (Mat.get q 0 0)

let test_uniformized_stochastic () =
  let g = two_state () in
  let p = Generator.uniformized g in
  check_float "row 0 stochastic" 1. (Vec.sum (Mat.row p 0));
  check_float "row 1 stochastic" 1. (Vec.sum (Mat.row p 1));
  Alcotest.(check bool) "non-negative" true
    (Array.for_all (Array.for_all (fun x -> x >= 0.)) (Mat.to_arrays p))

let test_uniformized_rate_check () =
  Alcotest.check_raises "rate too small"
    (Invalid_argument "Generator.uniformized: rate below max exit rate")
    (fun () -> ignore (Generator.uniformized ~rate:1. (two_state ())))

let test_apply_matches_dense () =
  let g = Generator.make ~n:3 [ (0, 1, 1.); (1, 2, 2.); (2, 0, 0.5); (0, 2, 0.3) ] in
  let q = Generator.to_dense g in
  let v = [| 1.; -2.; 0.7 |] in
  Alcotest.(check bool) "apply = Q v" true
    (Vec.approx_equal ~tol:1e-12 (Mat.mulv q v) (Generator.apply g v));
  Alcotest.(check bool) "apply_forward = Qt v" true
    (Vec.approx_equal ~tol:1e-12 (Mat.tmulv q v) (Generator.apply_forward g v))

let suites =
  [
    ( "generator",
      [
        Alcotest.test_case "basic construction" `Quick test_make_basic;
        Alcotest.test_case "duplicate merging" `Quick test_make_merges_duplicates;
        Alcotest.test_case "zero rates dropped" `Quick test_make_drops_zero;
        Alcotest.test_case "validation" `Quick test_make_validation;
        Alcotest.test_case "dense row sums" `Quick test_to_dense_row_sums;
        Alcotest.test_case "uniformized stochastic" `Quick test_uniformized_stochastic;
        Alcotest.test_case "uniformized rate check" `Quick test_uniformized_rate_check;
        Alcotest.test_case "sparse apply vs dense" `Quick test_apply_matches_dense;
      ] );
  ]
