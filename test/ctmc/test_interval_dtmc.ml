open Umf_numerics
open Umf_ctmc

let iv = Interval.make

(* precise 2-state DTMC as degenerate intervals: p(0->1)=0.3, p(1->0)=0.4 *)
let precise () =
  Interval_dtmc.make
    [|
      [| iv 0.7 0.7; iv 0.3 0.3 |];
      [| iv 0.4 0.4; iv 0.6 0.6 |];
    |]

let imprecise () =
  Interval_dtmc.make
    [|
      [| iv 0.5 0.8; iv 0.2 0.5 |];
      [| iv 0.3 0.5; iv 0.5 0.7 |];
    |]

let test_validation () =
  Alcotest.check_raises "not square"
    (Invalid_argument "Interval_dtmc.make: matrix not square") (fun () ->
      ignore (Interval_dtmc.make [| [| iv 0. 1. |]; [| iv 0. 1.; iv 0. 1. |] |]));
  Alcotest.check_raises "incoherent"
    (Invalid_argument "Interval_dtmc.make: incoherent row") (fun () ->
      ignore (Interval_dtmc.make [| [| iv 0.6 0.7; iv 0.6 0.7 |]; [| iv 0.5 0.5; iv 0.5 0.5 |] |]))

let test_precise_matches_matrix () =
  let m = precise () in
  let g = [| 1.; 0. |] in
  let lo = Interval_dtmc.lower_matvec m g in
  let hi = Interval_dtmc.upper_matvec m g in
  (* for degenerate intervals lower = upper = P g *)
  Alcotest.(check (float 1e-12)) "row 0" 0.7 lo.(0);
  Alcotest.(check (float 1e-12)) "row 1" 0.4 lo.(1);
  Alcotest.(check bool) "lower = upper" true (Vec.approx_equal lo hi)

let test_lower_le_upper () =
  let m = imprecise () in
  let g = [| 2.; -1. |] in
  let lo = Interval_dtmc.lower_matvec m g in
  let hi = Interval_dtmc.upper_matvec m g in
  Alcotest.(check bool) "ordered" true (Vec.le lo hi)

let test_lower_is_tight () =
  (* row 0 of the imprecise chain, g = (0, 1): the minimising p puts as
     little mass on state 1 as possible: p = (0.8, 0.2) -> 0.2 *)
  let m = imprecise () in
  let lo = Interval_dtmc.lower_matvec m [| 0.; 1. |] in
  Alcotest.(check (float 1e-12)) "tight lower" 0.2 lo.(0);
  let hi = Interval_dtmc.upper_matvec m [| 0.; 1. |] in
  (* maximising: p = (0.5, 0.5) -> 0.5 *)
  Alcotest.(check (float 1e-12)) "tight upper" 0.5 hi.(0)

let test_zero_steps_identity () =
  let m = imprecise () in
  let h = [| 2.5; -1. |] in
  Alcotest.(check bool) "0 steps = reward" true
    (Vec.approx_equal h (Interval_dtmc.lower_expectation m ~h ~steps:0))

let test_constant_reward_invariant () =
  (* lower/upper expectation of a constant is the constant *)
  let m = imprecise () in
  let g = [| 3.; 3. |] in
  let lo = Interval_dtmc.lower_expectation m ~h:g ~steps:7 in
  Alcotest.(check bool) "constant preserved" true
    (Vec.approx_equal ~tol:1e-9 g lo)

let test_monotone_in_steps () =
  (* bounds on an indicator widen (or stay) as the horizon grows *)
  let m = imprecise () in
  let h = [| 1.; 0. |] in
  let width k =
    let lo = Interval_dtmc.lower_expectation m ~h ~steps:k in
    let hi = Interval_dtmc.upper_expectation m ~h ~steps:k in
    hi.(0) -. lo.(0)
  in
  Alcotest.(check bool) "widening" true (width 5 >= width 1 -. 1e-9)

let test_cross_check_with_ictmc () =
  (* the Euler interval-DTMC of an imprecise CTMC gives sound, slightly
     wider bounds than the CTMC's own lower expectation *)
  let box = Optim.Box.make [| 1.; 1. |] [| 2.; 3. |] in
  let ictmc =
    Imprecise_ctmc.make ~n:3 ~theta:box
      [
        { Imprecise_ctmc.src = 0; dst = 1; rate = (fun th -> th.(0)) };
        { Imprecise_ctmc.src = 1; dst = 2; rate = (fun th -> th.(1)) };
        { Imprecise_ctmc.src = 2; dst = 0; rate = (fun _ -> 1.) };
        { Imprecise_ctmc.src = 1; dst = 0; rate = (fun th -> th.(0)) };
      ]
  in
  let horizon = 1.5 in
  let steps = 3000 in
  let dt = horizon /. float_of_int steps in
  let dtmc = Interval_dtmc.of_imprecise_ctmc ictmc ~dt in
  let h = [| 1.; 0.; 0. |] in
  let ctmc_sweep sense =
    (Imprecise_ctmc.fixed_series ~steps_per_unit:2000 ~sense ictmc ~h
       ~times:[| horizon |])
      .values.(0)
  in
  let ctmc_lo = ctmc_sweep `Lower and ctmc_hi = ctmc_sweep `Upper in
  let dtmc_lo = Interval_dtmc.lower_expectation dtmc ~h ~steps in
  let dtmc_hi = Interval_dtmc.upper_expectation dtmc ~h ~steps in
  for s = 0 to 2 do
    Alcotest.(check bool)
      (Printf.sprintf "dtmc lower below ctmc lower (state %d)" s)
      true
      (dtmc_lo.(s) <= ctmc_lo.(s) +. 2e-3);
    Alcotest.(check bool)
      (Printf.sprintf "dtmc upper above ctmc upper (state %d)" s)
      true
      (dtmc_hi.(s) >= ctmc_hi.(s) -. 2e-3);
    (* and not absurdly wider *)
    Alcotest.(check bool)
      (Printf.sprintf "dtmc bounds not trivial (state %d)" s)
      true
      (dtmc_hi.(s) -. dtmc_lo.(s) < (ctmc_hi.(s) -. ctmc_lo.(s)) +. 0.25)
  done

let test_dt_too_large () =
  let box = Optim.Box.make [| 10. |] [| 10. |] in
  let ictmc =
    Imprecise_ctmc.make ~n:2 ~theta:box
      [ { Imprecise_ctmc.src = 0; dst = 1; rate = (fun th -> th.(0)) } ]
  in
  Alcotest.check_raises "dt too large"
    (Invalid_argument "Interval_dtmc.of_imprecise_ctmc: dt too large for exit rates")
    (fun () -> ignore (Interval_dtmc.of_imprecise_ctmc ictmc ~dt:0.5))

(* coherence axioms of the lower transition operator, checked on random
   reward vectors over the imprecise chain *)
let arb_reward =
  QCheck.make
    ~print:(fun (a, b) -> Printf.sprintf "(%g, %g)" a b)
    QCheck.Gen.(pair (float_range (-5.) 5.) (float_range (-5.) 5.))

let prop_monotone =
  QCheck.Test.make ~name:"T_lower monotone" ~count:200
    (QCheck.pair arb_reward arb_reward) (fun ((a1, a2), (d1, d2)) ->
      let m = imprecise () in
      let g = [| a1; a2 |] in
      let h = [| a1 +. Float.abs d1; a2 +. Float.abs d2 |] in
      Vec.le (Interval_dtmc.lower_matvec m g) (Interval_dtmc.lower_matvec m h))

let prop_constant_additive =
  QCheck.Test.make ~name:"T_lower constant-additive" ~count:200
    (QCheck.pair arb_reward (QCheck.float_range (-3.) 3.))
    (fun ((a1, a2), c) ->
      let m = imprecise () in
      let g = [| a1; a2 |] in
      let shifted = Interval_dtmc.lower_matvec m (Vec.map (fun v -> v +. c) g) in
      let base = Vec.map (fun v -> v +. c) (Interval_dtmc.lower_matvec m g) in
      Vec.approx_equal ~tol:1e-9 shifted base)

let prop_superadditive =
  QCheck.Test.make ~name:"T_lower superadditive" ~count:200
    (QCheck.pair arb_reward arb_reward) (fun ((a1, a2), (b1, b2)) ->
      let m = imprecise () in
      let g = [| a1; a2 |] and h = [| b1; b2 |] in
      let sum = Interval_dtmc.lower_matvec m (Vec.add g h) in
      let parts =
        Vec.add (Interval_dtmc.lower_matvec m g) (Interval_dtmc.lower_matvec m h)
      in
      Vec.le (Vec.map (fun v -> v -. 1e-9) parts) sum)

let prop_homogeneous =
  QCheck.Test.make ~name:"T_lower positively homogeneous" ~count:200
    (QCheck.pair arb_reward (QCheck.float_range 0. 4.)) (fun ((a1, a2), l) ->
      let m = imprecise () in
      let g = [| a1; a2 |] in
      let scaled = Interval_dtmc.lower_matvec m (Vec.scale l g) in
      let base = Vec.scale l (Interval_dtmc.lower_matvec m g) in
      Vec.approx_equal ~tol:1e-9 scaled base)

let prop_conjugate =
  QCheck.Test.make ~name:"T_upper = -T_lower(-g)" ~count:200 arb_reward
    (fun (a1, a2) ->
      let m = imprecise () in
      let g = [| a1; a2 |] in
      let up = Interval_dtmc.upper_matvec m g in
      let conj =
        Vec.scale (-1.) (Interval_dtmc.lower_matvec m (Vec.scale (-1.) g))
      in
      Vec.approx_equal ~tol:1e-9 up conj)

let suites =
  [
    ( "interval_dtmc",
      [
        Alcotest.test_case "validation" `Quick test_validation;
        Alcotest.test_case "precise degenerates" `Quick test_precise_matches_matrix;
        Alcotest.test_case "lower <= upper" `Quick test_lower_le_upper;
        Alcotest.test_case "tight row optimisation" `Quick test_lower_is_tight;
        Alcotest.test_case "zero steps identity" `Quick test_zero_steps_identity;
        Alcotest.test_case "constants invariant" `Quick test_constant_reward_invariant;
        Alcotest.test_case "widening in steps" `Quick test_monotone_in_steps;
        Alcotest.test_case "cross-check vs imprecise CTMC" `Slow test_cross_check_with_ictmc;
        Alcotest.test_case "dt bound" `Quick test_dt_too_large;
        QCheck_alcotest.to_alcotest prop_monotone;
        QCheck_alcotest.to_alcotest prop_constant_additive;
        QCheck_alcotest.to_alcotest prop_superadditive;
        QCheck_alcotest.to_alcotest prop_homogeneous;
        QCheck_alcotest.to_alcotest prop_conjugate;
      ] );
  ]
