open Umf_numerics
open Umf_ctmc

(* 0 <-> 1 with rates a=2, b=3: p_0(t) has closed form
   p0(t) = b/(a+b) + (p0(0) - b/(a+b)) exp(-(a+b) t) *)
let a = 2. and b = 3.

let two_state () = Generator.make ~n:2 [ (0, 1, a); (1, 0, b) ]

let closed_form p00 t = (b /. (a +. b)) +. ((p00 -. (b /. (a +. b))) *. Float.exp (-.(a +. b) *. t))

let test_uniformization_closed_form () =
  let g = two_state () in
  List.iter
    (fun t ->
      let p = Transient.uniformization g ~p0:[| 1.; 0. |] ~t in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "p0 at t=%g" t)
        (closed_form 1. t) p.(0))
    [ 0.; 0.1; 0.5; 1.; 5. ]

let test_uniformization_preserves_mass () =
  let g = two_state () in
  let p = Transient.uniformization g ~p0:[| 0.3; 0.7 |] ~t:2.5 in
  Alcotest.(check (float 1e-9)) "mass" 1. (Vec.sum p)

let test_matches_ode () =
  let g = Generator.make ~n:3 [ (0, 1, 1.); (1, 2, 2.); (2, 0, 0.7); (0, 2, 0.2) ] in
  let p0 = [| 1.; 0.; 0. |] in
  let pu = Transient.uniformization g ~p0 ~t:1.7 in
  let po = Transient.kolmogorov_ode ~dt:1e-4 g ~p0 ~t:1.7 in
  Alcotest.(check bool) "uniformization = ODE" true
    (Vec.approx_equal ~tol:1e-6 pu po)

let test_long_horizon_converges_to_stationary () =
  let g = two_state () in
  let p = Transient.uniformization g ~p0:[| 1.; 0. |] ~t:50. in
  Alcotest.(check (float 1e-9)) "stationary p0" (b /. (a +. b)) p.(0)

let test_validation () =
  let g = two_state () in
  Alcotest.check_raises "bad distribution"
    (Invalid_argument "Transient: distribution does not sum to 1") (fun () ->
      ignore (Transient.uniformization g ~p0:[| 0.5; 0.2 |] ~t:1.));
  Alcotest.check_raises "negative time"
    (Invalid_argument "Transient.uniformization: t < 0") (fun () ->
      ignore (Transient.uniformization g ~p0:[| 1.; 0. |] ~t:(-1.)))

let test_expectation () =
  let g = two_state () in
  let e =
    Transient.expectation g ~p0:[| 1.; 0. |] ~t:0.5 (fun s -> float_of_int s)
  in
  Alcotest.(check (float 1e-9)) "E[X_t] = p1(t)" (1. -. closed_form 1. 0.5) e

let test_large_lambda_t () =
  (* stiff chain over a long horizon: exp(-lt) underflows; the
     log-space Poisson recursion must still work *)
  let g = Generator.make ~n:2 [ (0, 1, 500.); (1, 0, 300.) ] in
  let p = Transient.uniformization g ~p0:[| 1.; 0. |] ~t:10. in
  Alcotest.(check (float 1e-6)) "stationary" (300. /. 800.) p.(0)

let test_large_lambda_t_vs_ode () =
  (* λt ≈ 240: thousands of uniformisation terms against the RK4
     reference *)
  let g =
    Generator.make ~n:3 [ (0, 1, 50.); (1, 2, 30.); (2, 0, 40.); (1, 0, 20.) ]
  in
  let p0 = [| 1.; 0.; 0. |] in
  let pu = Transient.uniformization g ~p0 ~t:3. in
  let po = Transient.kolmogorov_ode ~dt:1e-6 g ~p0 ~t:3. in
  Alcotest.(check bool)
    "uniformization = ODE at large Λt" true
    (Vec.approx_equal ~tol:1e-6 pu po)

let test_epsilon_validation () =
  let g = two_state () in
  let bad = Invalid_argument "Transient: epsilon must be in (0, 1)" in
  List.iter
    (fun eps ->
      Alcotest.check_raises
        (Printf.sprintf "epsilon = %g" eps)
        bad
        (fun () ->
          ignore (Transient.uniformization ~epsilon:eps g ~p0:[| 1.; 0. |] ~t:1.)))
    [ 0.; 1.; -0.5; 2. ]

let test_truncation_raises_not_renormalises () =
  (* regression for the silent-truncation bug: the old implementation
     capped the sweep at a hard-coded term count and renormalised the
     partial sum to mass 1, hiding arbitrarily large error for large
     λt.  λt ≈ 8080 needs thousands of terms; a 50-term user cap must
     raise, not return a renormalised guess. *)
  let g = Generator.make ~n:2 [ (0, 1, 500.); (1, 0, 300.) ] in
  (match
     Transient.uniformization ~max_terms:50 g ~p0:[| 1.; 0. |] ~t:10.
   with
  | _ -> Alcotest.fail "expected Transient.Truncated"
  | exception Transient.Truncated { epsilon; mass; terms } ->
      Alcotest.(check int) "terms = cap" 50 terms;
      Alcotest.(check bool) "reported mass below target" true
        (mass < 1. -. epsilon);
      Alcotest.(check bool) "mass is tiny here" true (mass < 1e-6));
  Alcotest.check_raises "max_terms validated"
    (Invalid_argument "Transient: max_terms < 1") (fun () ->
      ignore (Transient.uniformization ~max_terms:0 g ~p0:[| 1.; 0. |] ~t:1.))

let test_mass_never_renormalised () =
  (* with a loose epsilon the sweep stops early; the returned vector
     must carry the honest partial mass (>= 1 - ε but below 1), not be
     scaled up to 1 *)
  let g = Generator.make ~n:2 [ (0, 1, 500.); (1, 0, 300.) ] in
  let epsilon = 1e-3 in
  let p = Transient.uniformization ~epsilon g ~p0:[| 1.; 0. |] ~t:1. in
  let mass = Vec.sum p in
  Alcotest.(check bool) "mass >= 1 - eps" true (mass >= 1. -. epsilon);
  Alcotest.(check bool) "mass <= 1" true (mass <= 1. +. 1e-12);
  Alcotest.(check bool) "not renormalised to exactly 1" true (mass < 1.)

let test_expectation_series () =
  let g = two_state () in
  let times = [| 0.; 0.1; 0.5; 1.; 2.5 |] in
  let h0 = [| 1.; 0. |] and h1 = [| 0.; 1. |] in
  let e = Transient.expectation_series g ~p0:[| 1.; 0. |] ~times [| h0; h1 |] in
  Array.iteri
    (fun j t ->
      let p = Transient.uniformization g ~p0:[| 1.; 0. |] ~t in
      Alcotest.(check (float 1e-10))
        (Printf.sprintf "h0 at t=%g" t)
        p.(0) e.(j).(0);
      Alcotest.(check (float 1e-10))
        (Printf.sprintf "h1 at t=%g" t)
        p.(1) e.(j).(1);
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "closed form at t=%g" t)
        (closed_form 1. t) e.(j).(0))
    times;
  Alcotest.check_raises "times must increase"
    (Invalid_argument "Transient.expectation_series: times not increasing")
    (fun () ->
      ignore
        (Transient.expectation_series g ~p0:[| 1.; 0. |] ~times:[| 1.; 1. |]
           [| h0 |]))

(* property: retained + certified (escaped + tail) mass accounts for
   everything — equal to 1 up to roundoff, and retained + escaped alone
   never falls more than epsilon (+ roundoff) short of 1.  Random
   chains, random leaks, random horizons. *)
let certified_mass_accounting =
  let gen =
    QCheck.Gen.(
      triple (int_range 2 40) (float_range 0.1 5.) (int_range 0 1_000_000))
  in
  QCheck.Test.make ~name:"certified mass accounting" ~count:50
    (QCheck.make gen) (fun (n, t, seed) ->
      let rng = Rng.create seed in
      let trans = ref [] in
      for i = 0 to n - 1 do
        trans := (i, (i + 1) mod n, 0.1 +. Rng.float rng) :: !trans
      done;
      let g = Generator.make ~n !trans in
      let leak = Array.init n (fun _ -> Rng.float rng *. 0.5) in
      let epsilon = 1e-12 in
      let p, (c : Transient.certificate) =
        Transient.uniformization_certified ~epsilon ~leak g
          ~p0:(Array.init n (fun i -> if i = 0 then 1. else 0.))
          ~t
      in
      let retained = Vec.sum p in
      c.escaped >= 0. && c.tail >= 0.
      && Float.abs (retained +. c.escaped +. c.tail -. 1.) < 1e-9
      && retained +. c.escaped >= 1. -. epsilon -. 1e-9
      && retained +. c.escaped <= 1. +. 1e-9)

let test_certified_no_leak_bit_identical () =
  (* without a leak the certified sweep is the strict sweep: same bits,
     escaped exactly 0 *)
  let g = Generator.make ~n:2 [ (0, 1, 500.); (1, 0, 300.) ] in
  let p0 = [| 1.; 0. |] in
  let strict = Transient.uniformization g ~p0 ~t:1. in
  let certified, (c : Transient.certificate) =
    Transient.uniformization_certified g ~p0 ~t:1.
  in
  Array.iteri
    (fun i x ->
      if Int64.bits_of_float x <> Int64.bits_of_float certified.(i) then
        Alcotest.failf "state %d differs: %h vs %h" i x certified.(i))
    strict;
  Alcotest.(check (float 0.)) "escaped is exactly zero" 0. c.escaped;
  Alcotest.(check bool) "tail below epsilon" true (c.tail <= 1e-12 +. 1e-13)

let test_certified_bounded_where_strict_raised () =
  (* the regression fixture of test_truncation_raises_not_renormalises:
     same chain, same 50-term cap.  The strict entry point raises
     Transient.Truncated; the certified one returns the partial answer
     with the entire deficit in the tail, so the caller still gets a
     sound two-sided bound. *)
  let g = Generator.make ~n:2 [ (0, 1, 500.); (1, 0, 300.) ] in
  let p0 = [| 1.; 0. |] in
  (match Transient.uniformization ~max_terms:50 g ~p0 ~t:10. with
  | _ -> Alcotest.fail "expected Transient.Truncated"
  | exception Transient.Truncated _ -> ());
  let p, (c : Transient.certificate) =
    Transient.uniformization_certified ~max_terms:50 g ~p0 ~t:10.
  in
  let retained = Vec.sum p in
  Alcotest.(check bool) "mass is tiny here" true (retained < 1e-6);
  Alcotest.(check bool) "tail certifies the cut" true
    (Float.abs (retained +. c.tail -. 1.) < 1e-12);
  (* any reward with range [0, 1] is then bounded within [r, r + lost] *)
  let lost = c.escaped +. c.tail in
  Alcotest.(check bool) "bound width below 1" true (lost <= 1.);
  Alcotest.(check bool) "bound is informative" true (lost > 0.9)

let suites =
  [
    ( "transient",
      [
        Alcotest.test_case "closed form" `Quick test_uniformization_closed_form;
        Alcotest.test_case "mass preserved" `Quick test_uniformization_preserves_mass;
        Alcotest.test_case "uniformization vs ODE" `Quick test_matches_ode;
        Alcotest.test_case "long horizon" `Quick test_long_horizon_converges_to_stationary;
        Alcotest.test_case "validation" `Quick test_validation;
        Alcotest.test_case "expectation" `Quick test_expectation;
        Alcotest.test_case "stiff / large Λt" `Quick test_large_lambda_t;
        Alcotest.test_case "large Λt vs ODE" `Quick test_large_lambda_t_vs_ode;
        Alcotest.test_case "epsilon validation" `Quick test_epsilon_validation;
        Alcotest.test_case "truncation raises (regression)" `Quick
          test_truncation_raises_not_renormalises;
        Alcotest.test_case "mass never renormalised" `Quick
          test_mass_never_renormalised;
        Alcotest.test_case "expectation series" `Quick test_expectation_series;
        QCheck_alcotest.to_alcotest certified_mass_accounting;
        Alcotest.test_case "certified = strict without leak" `Quick
          test_certified_no_leak_bit_identical;
        Alcotest.test_case "certified bounds where strict raised" `Quick
          test_certified_bounded_where_strict_raised;
      ] );
  ]
