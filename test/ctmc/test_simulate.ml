open Umf_numerics
open Umf_ctmc

(* 0 <-> 1 with rates 2 and 3: stationary distribution (0.6, 0.4) *)
let two_state () = Generator.make ~n:2 [ (0, 1, 2.); (1, 0, 3.) ]

let test_path_wellformed () =
  let rng = Rng.create 1 in
  let p = Simulate.run rng (two_state ()) ~x0:0 ~tmax:10. in
  Alcotest.(check int) "starts at x0" 0 (Path.state_at p 0.);
  Alcotest.(check bool) "has jumps" true (Path.jumps p > 0);
  (* successive states alternate in a two-state chain *)
  let ok = ref true in
  for i = 1 to Path.length p - 1 do
    if p.Path.states.(i) = p.Path.states.(i - 1) then ok := false
  done;
  Alcotest.(check bool) "no self transitions" true !ok

let test_occupancy_matches_stationary () =
  let rng = Rng.create 2 in
  let p = Simulate.run rng (two_state ()) ~x0:0 ~tmax:5000. in
  let occ = Path.occupancy p 2 in
  Alcotest.(check bool) "near 0.6" true (Float.abs (occ.(0) -. 0.6) < 0.03);
  Alcotest.(check bool) "near 0.4" true (Float.abs (occ.(1) -. 0.4) < 0.03)

let test_absorbing () =
  (* 0 -> 1, 1 absorbing *)
  let g = Generator.make ~n:2 [ (0, 1, 5.) ] in
  let rng = Rng.create 3 in
  let p = Simulate.run rng g ~x0:0 ~tmax:100. in
  Alcotest.(check int) "absorbed in 1" 1 (Path.final_state p);
  Alcotest.(check int) "exactly one jump" 1 (Path.jumps p);
  Alcotest.(check (float 1e-12)) "horizon kept" 100. p.Path.horizon

let test_jump_count_scaling () =
  (* Poisson-like: expected number of jumps ~ rate * t in a cyclic chain *)
  let g = Generator.make ~n:3 [ (0, 1, 10.); (1, 2, 10.); (2, 0, 10.) ] in
  let rng = Rng.create 4 in
  let p = Simulate.run rng g ~x0:0 ~tmax:100. in
  let expected = 1000. in
  Alcotest.(check bool) "jump count near rate*t" true
    (Float.abs (float_of_int (Path.jumps p) -. expected) < 150.)

let test_deterministic_given_seed () =
  let p1 = Simulate.run (Rng.create 42) (two_state ()) ~x0:0 ~tmax:5. in
  let p2 = Simulate.run (Rng.create 42) (two_state ()) ~x0:0 ~tmax:5. in
  Alcotest.(check bool) "same path" true
    (p1.Path.times = p2.Path.times && p1.Path.states = p2.Path.states)

let test_mean_reward () =
  let rng = Rng.create 5 in
  let mean, se =
    Simulate.mean_reward rng (two_state ()) ~x0:0 ~tmax:20. ~runs:400
      (fun s -> if s = 0 then 1. else 0.)
  in
  Alcotest.(check bool) "mean near stationary 0.6" true
    (Float.abs (mean -. 0.6) < 0.08);
  Alcotest.(check bool) "positive standard error" true (se > 0.)

let test_time_varying_generator () =
  (* imprecise-style simulation: rate 0 until t = 5, then fast switch *)
  let slow = Generator.make ~n:2 [ (0, 1, 0.001) ] in
  let fast = Generator.make ~n:2 [ (0, 1, 1000.); (1, 0, 1000.) ] in
  let rng = Rng.create 6 in
  let p =
    Simulate.run_imprecise ~rate_bound:1000. rng
      (fun ~t ~x:_ -> if t < 5. then slow else fast)
      ~x0:0 ~tmax:10.
  in
  (* almost surely no jump before t = 5, many after *)
  Alcotest.(check bool) "jumps mostly after switch" true (Path.jumps p > 100)

let suites =
  [
    ( "simulate",
      [
        Alcotest.test_case "well-formed paths" `Quick test_path_wellformed;
        Alcotest.test_case "occupancy vs stationary" `Slow test_occupancy_matches_stationary;
        Alcotest.test_case "absorbing state" `Quick test_absorbing;
        Alcotest.test_case "jump count scaling" `Quick test_jump_count_scaling;
        Alcotest.test_case "seed determinism" `Quick test_deterministic_given_seed;
        Alcotest.test_case "mean reward" `Slow test_mean_reward;
        Alcotest.test_case "time-varying generator" `Quick test_time_varying_generator;
      ] );
  ]
