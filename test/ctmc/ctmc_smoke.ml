(* End-to-end smoke of the finite-N sparse CTMC engine, wired into
   `dune runtest` through the @ctmc-smoke alias: enumerate a small SIR
   lattice, build the sparse generator, run a sparse transient and
   cross-check it against the dense RK4 reference. *)

open Umf

let check name ok =
  if not ok then begin
    Printf.eprintf "ctmc-smoke FAILED: %s\n%!" name;
    exit 1
  end

let () =
  let model = Sir.make Sir.default_params in
  let pop = Model.population model in
  let n = 20 in
  let space = Ctmc_of_population.state_space pop ~n ~x0:(Model.x0 model) in
  let states = Ctmc_of_population.n_states space in
  (* reachable lattice of the 2-var SIR: the S+I <= N simplex *)
  check "state count = simplex size" (states = (n + 1) * (n + 2) / 2);
  let theta = Optim.Box.midpoint (Model.theta model) in
  let g = Ctmc_of_population.generator space pop ~theta in
  check "nonempty generator" (Generator.nnz g > 0);
  let p0 = Ctmc_of_population.point_mass space in
  let pt = Transient.uniformization g ~p0 ~t:1. in
  check "mass within epsilon" (Float.abs (Vec.sum pt -. 1.) < 1e-9);
  let ode = Transient.kolmogorov_ode ~dt:1e-4 g ~p0 ~t:1. in
  check "sparse uniformization = dense ODE reference"
    (Vec.dist_inf pt ode < 1e-6);
  let infected = Ctmc_of_population.reward space (fun x -> x.(1)) in
  let series =
    Transient.expectation_series g ~p0 ~times:[| 0.; 1. |] [| infected |]
  in
  check "t=0 expectation is the initial density"
    (Float.abs (series.(0).(0) -. 0.3) < 1e-12);
  check "series endpoint matches distribution"
    (Float.abs (series.(1).(0) -. Vec.dot infected pt) < 1e-10);
  let pi = Stationary.power_iteration g in
  check "stationary mass" (Float.abs (Vec.sum pi -. 1.) < 1e-9);
  check "stationary fixed point"
    (Vec.norm_inf (Generator.apply_forward g pi) < 1e-8);
  print_endline "ctmc-smoke OK"
