(* End-to-end smoke of the finite-N CTMC engine, wired into
   `dune runtest` through the @ctmc-smoke alias.

   Part 1 is the bitwise A/B gate over every registry model: the dense
   uniformised step (Mat.tmulv of Generator.uniformized), the sparse
   sequential step and the pooled sparse step at 2 and 4 domains must
   produce the same bits at every state, every step — the contract that
   lets the engine swap kernels freely.  A mismatch fails with the
   model, the step and the first differing state index.

   Part 2 keeps the original SIR end-to-end checks, now through the
   Ctmc.Engine front door. *)

open Umf

let check name ok =
  if not ok then begin
    Printf.eprintf "ctmc-smoke FAILED: %s\n%!" name;
    exit 1
  end

let bits = Int64.bits_of_float

let first_diff a b =
  let n = Array.length a in
  let rec go i =
    if i >= n then None
    else if bits a.(i) <> bits b.(i) then Some i
    else go (i + 1)
  in
  go 0

let require_identical ~model ~step ~what reference candidate =
  match first_diff reference candidate with
  | None -> ()
  | Some i ->
      Printf.eprintf
        "ctmc-smoke FAILED: %s differs from dense reference on %s at step \
         %d, state %d: %h vs %h\n\
         %!"
        what model step i reference.(i) candidate.(i);
      exit 1

(* Largest n <= 50 whose reachable lattice fits the dense-matrix
   budget under exact enumeration.  Models whose finite-N chain is not
   containable in their clip box at any n (cholera: shedding grows B
   without bound) fall back to adaptive truncation — the gate then
   checks sequential vs pooled bits on the substochastic operator
   instead of a dense reference. *)
let space_for model =
  let pop = Model.population model in
  let exact n =
    Ctmc_of_population.state_space ~clip:(Model.clip model) ~max_states:2_000
      pop ~n ~x0:(Model.x0 model)
  in
  let rec go n =
    match exact n with
    | sp -> Some (n, sp)
    | exception Failure _ -> if n > 2 then go (n / 2) else None
  in
  match go 50 with
  | Some (n, sp) -> (n, sp)
  | None ->
      ( 50,
        Ctmc_of_population.state_space ~clip:(Model.clip model)
          ~max_states:2_000 ~truncation:`Adaptive pop ~n:50
          ~x0:(Model.x0 model) )

let ab_gate pool2 pool4 (name, model) =
  let n, space = space_for model in
  let states = Ctmc_of_population.n_states space in
  check (name ^ ": nonempty lattice") (states > 0);
  let pop = Model.population model in
  let theta = Optim.Box.midpoint (Model.theta model) in
  let truncated = Ctmc_of_population.truncated space in
  let g, leak =
    if truncated then
      let g, leak = Ctmc_of_population.truncated_generator space pop ~theta in
      (g, Some leak)
    else (Ctmc_of_population.generator space pop ~theta, None)
  in
  (* dense reference only exists for the exact operator: Generator
     .uniformized knows nothing of truncation leaks *)
  let p_dense = if truncated then None else Some (Ctmc.Generator.uniformized g) in
  let op =
    match leak with
    | Some l -> Ctmc.Sparse.forward ~leak:l g
    | None -> Ctmc.Sparse.forward g
  in
  let v = ref (Ctmc_of_population.point_mass space) in
  let seq = Vec.zeros states in
  let par2 = Vec.zeros states in
  let par4 = Vec.zeros states in
  let leaked = ref 0. in
  for step = 1 to 5 do
    let l0 = Ctmc.Sparse.step_into op !v ~into:seq in
    let l2 = Ctmc.Sparse.step_into ~pool:pool2 op !v ~into:par2 in
    let l4 = Ctmc.Sparse.step_into ~pool:pool4 op !v ~into:par4 in
    if truncated then begin
      check (name ^ ": pooled escaped mass bit-identical")
        (bits l0 = bits l2 && bits l0 = bits l4);
      leaked := !leaked +. l0
    end
    else
      check (name ^ ": exact operator leaks no mass")
        (l0 = 0. && l2 = 0. && l4 = 0.);
    (match p_dense with
    | Some p ->
        let dense = Mat.tmulv p !v in
        require_identical ~model:name ~step ~what:"sparse sequential" dense
          seq
    | None -> ());
    require_identical ~model:name ~step ~what:"sparse 2-domain pool" seq par2;
    require_identical ~model:name ~step ~what:"sparse 4-domain pool" seq par4;
    Vec.blit seq ~into:!v
  done;
  (* the 5-step mass balance: retained + escaped = 1 (up to roundoff) *)
  check (name ^ ": mass accounted for")
    (Float.abs (Vec.sum !v +. !leaked -. 1.) < 1e-12);
  (* one full uniformisation sweep: pooled bits = sequential bits *)
  let p0 = Ctmc_of_population.point_mass space in
  let a, ca = Ctmc.Transient.uniformization_certified ?leak g ~p0 ~t:0.5 in
  let b, cb =
    Ctmc.Transient.uniformization_certified ~pool:pool4 ?leak g ~p0 ~t:0.5
  in
  check (name ^ ": pooled sweep certificate bit-identical")
    (bits ca.Ctmc.Transient.escaped = bits cb.Ctmc.Transient.escaped
    && bits ca.tail = bits cb.tail);
  (match first_diff a b with
  | None -> ()
  | Some i ->
      Printf.eprintf
        "ctmc-smoke FAILED: pooled uniformization differs on %s at state %d: \
         %h vs %h\n\
         %!"
        name i a.(i) b.(i);
      exit 1);
  Printf.printf "ctmc-smoke A/B %-12s n=%-3d states=%-5d %s OK\n%!" name n
    states
    (if truncated then "adaptive" else "exact")

let () =
  let pool2 = Runtime.Pool.create ~domains:2 () in
  let pool4 = Runtime.Pool.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () ->
      Runtime.Pool.shutdown pool2;
      Runtime.Pool.shutdown pool4)
    (fun () -> List.iter (ab_gate pool2 pool4) (Registry.all ()))

(* part 2: the historical SIR end-to-end checks, via the spec front
   door and the Ctmc kernel namespace *)
let () =
  let model = Sir.make Sir.default_params in
  let pop = Model.population model in
  let n = 20 in
  let space = Ctmc_of_population.state_space pop ~n ~x0:(Model.x0 model) in
  let states = Ctmc_of_population.n_states space in
  (* reachable lattice of the 2-var SIR: the S+I <= N simplex *)
  check "state count = simplex size" (states = (n + 1) * (n + 2) / 2);
  let theta = Optim.Box.midpoint (Model.theta model) in
  let g = Ctmc_of_population.generator space pop ~theta in
  check "nonempty generator" (Ctmc.Generator.nnz g > 0);
  let p0 = Ctmc_of_population.point_mass space in
  let pt = Ctmc.Transient.uniformization g ~p0 ~t:1. in
  check "mass within epsilon" (Float.abs (Vec.sum pt -. 1.) < 1e-9);
  let ode = Ctmc.Transient.kolmogorov_ode ~dt:1e-4 g ~p0 ~t:1. in
  check "sparse uniformization = dense ODE reference"
    (Vec.dist_inf pt ode < 1e-6);
  let spec = Ctmc.Engine.spec ~horizon:1. ~times:[| 0.; 1. |] ~n model in
  let tr =
    Ctmc.Engine.transient ~theta spec ~rewards:[| Ctmc.Engine.Coord 1 |]
  in
  check "engine reuses the exact lattice" (tr.Ctmc.Engine.states = states);
  check "t=0 expectation is the initial density"
    (Float.abs (tr.value.(0).(0) -. 0.3) < 1e-12);
  let infected = Ctmc_of_population.reward space (fun x -> x.(1)) in
  check "engine endpoint matches distribution"
    (Float.abs (tr.value.(1).(0) -. Vec.dot infected pt) < 1e-10);
  (* tail <= epsilon up to the roundoff of summing ~1e2 Poisson
     weights *)
  check "exact engine certificates are tight"
    (Array.for_all
       (fun (c : Ctmc.Engine.certificate) ->
         c.escaped = 0. && c.tail >= 0. && c.tail <= 1e-12 +. 1e-13)
       tr.certificates);
  let st =
    Ctmc.Engine.stationary ~theta spec ~rewards:[| Ctmc.Engine.Coord 1 |]
  in
  check "stationary mass" (Float.abs (Vec.sum st.pi -. 1.) < 1e-9);
  check "stationary fixed point"
    (Vec.norm_inf (Ctmc.Generator.apply_forward g st.pi) < 1e-8);
  print_endline "ctmc-smoke OK"
