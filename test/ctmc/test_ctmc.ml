let () =
  Alcotest.run "umf_ctmc"
    (Test_generator.suites @ Test_path.suites @ Test_simulate.suites
   @ Test_transient.suites @ Test_stationary.suites @ Test_imprecise.suites
   @ Test_interval_dtmc.suites @ Test_sparse.suites)
