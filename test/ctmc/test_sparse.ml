open Umf_numerics
open Umf_ctmc
module Pool = Umf_runtime.Runtime.Pool

(* random chain: every state gets a forward edge (so nothing is
   absorbing) plus a few extra random edges with positive rates *)
let random_chain rng n =
  let trans = ref [] in
  for i = 0 to n - 1 do
    trans := (i, (i + 1) mod n, 0.1 +. Rng.float rng) :: !trans;
    for _ = 1 to 2 do
      let j = Rng.int rng n in
      if j <> i then trans := (i, j, 0.01 +. (2. *. Rng.float rng)) :: !trans
    done
  done;
  Generator.make ~n !trans

let random_distribution rng n =
  let p = Array.init n (fun _ -> Rng.float rng +. 1e-3) in
  Vec.scale (1. /. Vec.sum p) p

let bits = Int64.bits_of_float

let check_bitwise msg a b =
  Alcotest.(check int) (msg ^ ": dim") (Vec.dim a) (Vec.dim b);
  Array.iteri
    (fun i x ->
      if bits x <> bits b.(i) then
        Alcotest.failf "%s: component %d differs: %h vs %h" msg i x b.(i))
    a

let test_matches_dense_bitwise () =
  let rng = Rng.create 42 in
  for trial = 1 to 10 do
    let n = 2 + Rng.int rng 40 in
    let g = random_chain rng n in
    let rate = 1.01 *. Generator.max_exit_rate g in
    let v = random_distribution rng n in
    let dense = Mat.tmulv (Generator.uniformized ~rate g) v in
    let op = Sparse.forward ~rate g in
    let into = Vec.zeros n in
    Sparse.step_into op v ~into;
    check_bitwise (Printf.sprintf "trial %d" trial) dense into
  done

let test_default_rate_matches () =
  let rng = Rng.create 7 in
  let g = random_chain rng 17 in
  let v = random_distribution rng 17 in
  let dense = Mat.tmulv (Generator.uniformized g) v in
  let op = Sparse.forward g in
  Alcotest.(check (float 0.))
    "same default rate"
    (Float.max 1e-9 (1.01 *. Generator.max_exit_rate g))
    (Sparse.rate op);
  let into = Vec.zeros 17 in
  Sparse.step_into op v ~into;
  check_bitwise "default rate" dense into

let test_fused_accumulate () =
  let rng = Rng.create 9 in
  let n = 23 in
  let g = random_chain rng n in
  let op = Sparse.forward g in
  let v = random_distribution rng n in
  let w = 0.37 in
  let r0 = Array.init n (fun i -> float_of_int i /. 10.) in
  (* fused pass *)
  let acc = Vec.copy r0 and into = Vec.zeros n in
  Sparse.step_into ~acc:(w, acc) op v ~into;
  (* separate passes *)
  let into' = Vec.zeros n in
  Sparse.step_into op v ~into:into';
  let acc' = Vec.copy r0 in
  Vec.axpy_in_place w v acc';
  check_bitwise "step" into' into;
  check_bitwise "accumulator" acc' acc

let test_pool_bit_identical () =
  (* n > the internal 4096 chunk so the pooled path actually splits *)
  let rng = Rng.create 11 in
  let n = 9000 in
  let g = random_chain rng n in
  let op = Sparse.forward g in
  let v = random_distribution rng n in
  let seq = Vec.zeros n and par = Vec.zeros n in
  let acc_seq = Vec.zeros n and acc_par = Vec.zeros n in
  Sparse.step_into ~acc:(0.5, acc_seq) op v ~into:seq;
  let pool = Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () -> Sparse.step_into ~pool ~acc:(0.5, acc_par) op v ~into:par);
  check_bitwise "pooled step" seq par;
  check_bitwise "pooled accumulator" acc_seq acc_par

let test_nnz_and_sizes () =
  let g = Generator.make ~n:3 [ (0, 1, 1.); (1, 2, 2.); (2, 0, 3.); (0, 2, 4.) ] in
  let op = Sparse.forward g in
  Alcotest.(check int) "n_states" 3 (Sparse.n_states op);
  Alcotest.(check int) "nnz" 4 (Sparse.nnz op);
  Alcotest.(check int) "generator nnz" 4 (Generator.nnz g)

let test_validation () =
  let g = Generator.make ~n:2 [ (0, 1, 2.); (1, 0, 3.) ] in
  Alcotest.check_raises "rate below max exit"
    (Invalid_argument "Sparse.forward: rate below max exit rate") (fun () ->
      ignore (Sparse.forward ~rate:1. g));
  let op = Sparse.forward g in
  let v = [| 0.5; 0.5 |] in
  Alcotest.check_raises "aliasing"
    (Invalid_argument "Sparse.step_into: into aliases v") (fun () ->
      Sparse.step_into op v ~into:v);
  Alcotest.check_raises "dimension"
    (Invalid_argument "Sparse.step_into: dimension mismatch") (fun () ->
      Sparse.step_into op v ~into:(Vec.zeros 3))

let test_of_rows () =
  let g = Generator.of_rows [| [| (1, 2.) |]; [| (0, 3.) |] |] in
  Alcotest.(check (float 0.)) "exit 0" 2. (Generator.exit_rate g 0);
  Alcotest.(check (float 0.)) "exit 1" 3. (Generator.exit_rate g 1);
  Alcotest.check_raises "unsorted row"
    (Invalid_argument "Generator.of_rows: row not sorted by destination")
    (fun () ->
      ignore (Generator.of_rows [| [| (2, 1.); (1, 1.) |]; [||]; [||] |]));
  Alcotest.check_raises "self loop"
    (Invalid_argument "Generator.of_rows: self loop") (fun () ->
      ignore (Generator.of_rows [| [| (0, 1.) |] |]));
  Alcotest.check_raises "zero rate"
    (Invalid_argument "Generator.of_rows: rate not positive and finite")
    (fun () -> ignore (Generator.of_rows [| [| (1, 0.) |]; [||] |]))

let suites =
  [
    ( "sparse",
      [
        Alcotest.test_case "bitwise vs dense tmulv" `Quick
          test_matches_dense_bitwise;
        Alcotest.test_case "default rate" `Quick test_default_rate_matches;
        Alcotest.test_case "fused accumulate" `Quick test_fused_accumulate;
        Alcotest.test_case "pool bit-identical" `Quick test_pool_bit_identical;
        Alcotest.test_case "nnz and sizes" `Quick test_nnz_and_sizes;
        Alcotest.test_case "validation" `Quick test_validation;
        Alcotest.test_case "of_rows" `Quick test_of_rows;
      ] );
  ]
