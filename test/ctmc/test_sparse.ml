open Umf_numerics
open Umf_ctmc
module Pool = Umf_runtime.Runtime.Pool

(* random chain: every state gets a forward edge (so nothing is
   absorbing) plus a few extra random edges with positive rates *)
let random_chain rng n =
  let trans = ref [] in
  for i = 0 to n - 1 do
    trans := (i, (i + 1) mod n, 0.1 +. Rng.float rng) :: !trans;
    for _ = 1 to 2 do
      let j = Rng.int rng n in
      if j <> i then trans := (i, j, 0.01 +. (2. *. Rng.float rng)) :: !trans
    done
  done;
  Generator.make ~n !trans

let random_distribution rng n =
  let p = Array.init n (fun _ -> Rng.float rng +. 1e-3) in
  Vec.scale (1. /. Vec.sum p) p

let bits = Int64.bits_of_float

let check_bitwise msg a b =
  Alcotest.(check int) (msg ^ ": dim") (Vec.dim a) (Vec.dim b);
  Array.iteri
    (fun i x ->
      if bits x <> bits b.(i) then
        Alcotest.failf "%s: component %d differs: %h vs %h" msg i x b.(i))
    a

let test_matches_dense_bitwise () =
  let rng = Rng.create 42 in
  for trial = 1 to 10 do
    let n = 2 + Rng.int rng 40 in
    let g = random_chain rng n in
    let rate = 1.01 *. Generator.max_exit_rate g in
    let v = random_distribution rng n in
    let dense = Mat.tmulv (Generator.uniformized ~rate g) v in
    let op = Sparse.forward ~rate g in
    let into = Vec.zeros n in
    ignore (Sparse.step_into op v ~into : float);
    check_bitwise (Printf.sprintf "trial %d" trial) dense into
  done

let test_default_rate_matches () =
  let rng = Rng.create 7 in
  let g = random_chain rng 17 in
  let v = random_distribution rng 17 in
  let dense = Mat.tmulv (Generator.uniformized g) v in
  let op = Sparse.forward g in
  Alcotest.(check (float 0.))
    "same default rate"
    (Float.max 1e-9 (1.01 *. Generator.max_exit_rate g))
    (Sparse.rate op);
  let into = Vec.zeros 17 in
  ignore (Sparse.step_into op v ~into : float);
  check_bitwise "default rate" dense into

let test_fused_accumulate () =
  let rng = Rng.create 9 in
  let n = 23 in
  let g = random_chain rng n in
  let op = Sparse.forward g in
  let v = random_distribution rng n in
  let w = 0.37 in
  let r0 = Array.init n (fun i -> float_of_int i /. 10.) in
  (* fused pass *)
  let acc = Vec.copy r0 and into = Vec.zeros n in
  ignore (Sparse.step_into ~acc:(w, acc) op v ~into : float);
  (* separate passes *)
  let into' = Vec.zeros n in
  ignore (Sparse.step_into op v ~into:into' : float);
  let acc' = Vec.copy r0 in
  Vec.axpy_in_place w v acc';
  check_bitwise "step" into' into;
  check_bitwise "accumulator" acc' acc

let test_pool_bit_identical () =
  (* n > the internal 4096 chunk so the pooled path actually splits *)
  let rng = Rng.create 11 in
  let n = 9000 in
  let g = random_chain rng n in
  let op = Sparse.forward g in
  let v = random_distribution rng n in
  let seq = Vec.zeros n and par = Vec.zeros n in
  let acc_seq = Vec.zeros n and acc_par = Vec.zeros n in
  ignore (Sparse.step_into ~acc:(0.5, acc_seq) op v ~into:seq : float);
  let pool = Pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      ignore (Sparse.step_into ~pool ~acc:(0.5, acc_par) op v ~into:par : float));
  check_bitwise "pooled step" seq par;
  check_bitwise "pooled accumulator" acc_seq acc_par

let test_nnz_and_sizes () =
  let g = Generator.make ~n:3 [ (0, 1, 1.); (1, 2, 2.); (2, 0, 3.); (0, 2, 4.) ] in
  let op = Sparse.forward g in
  Alcotest.(check int) "n_states" 3 (Sparse.n_states op);
  Alcotest.(check int) "nnz" 4 (Sparse.nnz op);
  Alcotest.(check int) "generator nnz" 4 (Generator.nnz g)

let test_validation () =
  let g = Generator.make ~n:2 [ (0, 1, 2.); (1, 0, 3.) ] in
  Alcotest.check_raises "rate below max exit"
    (Invalid_argument "Sparse.forward: rate below max exit rate") (fun () ->
      ignore (Sparse.forward ~rate:1. g));
  let op = Sparse.forward g in
  let v = [| 0.5; 0.5 |] in
  Alcotest.check_raises "aliasing"
    (Invalid_argument "Sparse.step_into: into aliases v") (fun () ->
      ignore (Sparse.step_into op v ~into:v : float));
  Alcotest.check_raises "dimension"
    (Invalid_argument "Sparse.step_into: dimension mismatch") (fun () ->
      ignore (Sparse.step_into op v ~into:(Vec.zeros 3) : float))

let test_blocking () =
  (* blocks are fixed at assembly: a small chain is one block, a large
     one splits (<= 4096 rows per block) *)
  let small = Sparse.forward (Generator.make ~n:2 [ (0, 1, 1.); (1, 0, 1.) ]) in
  Alcotest.(check int) "small chain is one block" 1 (Sparse.n_blocks small);
  let rng = Rng.create 13 in
  let g = random_chain rng 9000 in
  let op = Sparse.forward g in
  Alcotest.(check bool) "large chain splits" true (Sparse.n_blocks op >= 3)

let test_leak_loss () =
  let rng = Rng.create 17 in
  let n = 40 in
  let g = random_chain rng n in
  let leak = Array.init n (fun i -> if i mod 3 = 0 then 0.5 else 0.) in
  let op = Sparse.forward ~leak g in
  Alcotest.(check bool) "substochastic" true (Sparse.substochastic op);
  Alcotest.(check bool)
    "exact operator is not substochastic" false
    (Sparse.substochastic (Sparse.forward g));
  let v = random_distribution rng n in
  let into = Vec.zeros n in
  let lost = Sparse.step_into op v ~into in
  (* one block at n = 40, so the escaped mass is exactly the in-order
     dot product of the per-state loss with v *)
  let rate = Sparse.rate op in
  let expected = ref 0. in
  for j = 0 to n - 1 do
    expected := !expected +. (leak.(j) /. rate *. v.(j))
  done;
  if bits lost <> bits !expected then
    Alcotest.failf "escaped mass: %h vs %h" lost !expected;
  Alcotest.(check bool) "mass balance" true
    (Float.abs (Vec.sum into +. lost -. Vec.sum v) < 1e-14)

let test_leak_pool_deterministic () =
  (* multi-block substochastic operator: pooled step and escaped mass
     are bit-identical to sequential for any domain count *)
  let rng = Rng.create 19 in
  let n = 9000 in
  let g = random_chain rng n in
  let leak = Array.init n (fun _ -> Rng.float rng *. 0.1) in
  let op = Sparse.forward ~leak g in
  let v = random_distribution rng n in
  let seq = Vec.zeros n and par = Vec.zeros n in
  let lost_seq = Sparse.step_into op v ~into:seq in
  List.iter
    (fun domains ->
      let pool = Pool.create ~domains () in
      let lost_par =
        Fun.protect
          ~finally:(fun () -> Pool.shutdown pool)
          (fun () -> Sparse.step_into ~pool op v ~into:par)
      in
      if bits lost_seq <> bits lost_par then
        Alcotest.failf "escaped mass (%d domains): %h vs %h" domains lost_seq
          lost_par;
      check_bitwise (Printf.sprintf "pooled leak step (%d domains)" domains)
        seq par)
    [ 2; 4 ]

let test_of_rows () =
  let g = Generator.of_rows [| [| (1, 2.) |]; [| (0, 3.) |] |] in
  Alcotest.(check (float 0.)) "exit 0" 2. (Generator.exit_rate g 0);
  Alcotest.(check (float 0.)) "exit 1" 3. (Generator.exit_rate g 1);
  Alcotest.check_raises "unsorted row"
    (Invalid_argument "Generator.of_rows: row not sorted by destination")
    (fun () ->
      ignore (Generator.of_rows [| [| (2, 1.); (1, 1.) |]; [||]; [||] |]));
  Alcotest.check_raises "self loop"
    (Invalid_argument "Generator.of_rows: self loop") (fun () ->
      ignore (Generator.of_rows [| [| (0, 1.) |] |]));
  Alcotest.check_raises "zero rate"
    (Invalid_argument "Generator.of_rows: rate not positive and finite")
    (fun () -> ignore (Generator.of_rows [| [| (1, 0.) |]; [||] |]))

let suites =
  [
    ( "sparse",
      [
        Alcotest.test_case "bitwise vs dense tmulv" `Quick
          test_matches_dense_bitwise;
        Alcotest.test_case "default rate" `Quick test_default_rate_matches;
        Alcotest.test_case "fused accumulate" `Quick test_fused_accumulate;
        Alcotest.test_case "pool bit-identical" `Quick test_pool_bit_identical;
        Alcotest.test_case "nnz and sizes" `Quick test_nnz_and_sizes;
        Alcotest.test_case "cache blocking" `Quick test_blocking;
        Alcotest.test_case "leak loss" `Quick test_leak_loss;
        Alcotest.test_case "leak pool deterministic" `Quick
          test_leak_pool_deterministic;
        Alcotest.test_case "validation" `Quick test_validation;
        Alcotest.test_case "of_rows" `Quick test_of_rows;
      ] );
  ]
