(* Soundness gates for the unified Cert layer.

   1. qcheck: random combinator chains over Cert values must keep the
      certified interval around a double-double reference of the same
      chain — 10^4 random points, plus 10^4 random (x, θ) points per
      bundled model checking Certified.drift_cert against a
      double-double evaluation of the symbolic drift.
   2. The adaptive imprecise sweep must land within its own certified ε
      of a 10x-finer fixed grid on SIR and cholera, and its a-priori
      promise eps <= ε must hold.
   3. Analysis.first_passage returns certified, ordered, monotone
      bounds with a finite ledger on every registry model. *)

open Umf

(* ------------------------------------------------------------------ *)
(* double-double reference arithmetic (Dekker/Knuth error-free
   transforms): ~32 significant digits, enough to stand in for the
   exact value against plain-float certificates *)

module Dd = struct
  type t = { hi : float; lo : float }

  let of_float x = { hi = x; lo = 0. }
  let zero = of_float 0.

  let two_sum a b =
    let s = a +. b in
    let bv = s -. a in
    let err = (a -. (s -. bv)) +. (b -. bv) in
    (s, err)

  let quick_two_sum a b =
    let s = a +. b in
    let err = b -. (s -. a) in
    (s, err)

  let two_prod a b =
    let p = a *. b in
    let err = Float.fma a b (-.p) in
    (p, err)

  let norm (s, e) =
    let hi, lo = quick_two_sum s e in
    { hi; lo }

  let add a b =
    let s, e = two_sum a.hi b.hi in
    norm (s, e +. a.lo +. b.lo)

  let neg a = { hi = -.a.hi; lo = -.a.lo }
  let sub a b = add a (neg b)

  let mul a b =
    let p, e = two_prod a.hi b.hi in
    norm (p, e +. (a.hi *. b.lo) +. (a.lo *. b.hi))

  let div a b =
    let q1 = a.hi /. b.hi in
    let r = sub a (mul (of_float q1) b) in
    norm (quick_two_sum q1 (r.hi /. b.hi))

  let scale c a = mul (of_float c) a
  let to_float a = a.hi +. a.lo

  let compare a b =
    match Float.compare a.hi b.hi with
    | 0 -> Float.compare a.lo b.lo
    | c -> c

  let min_ a b = if compare a b <= 0 then a else b
  let max_ a b = if compare a b >= 0 then a else b

  let rec pow a k = if k <= 0 then of_float 1. else mul a (pow a (k - 1))
end

let rec dd_eval (e : Expr.t) ~x ~th =
  match e with
  | Expr.Const c -> Dd.of_float c
  | Var i -> Dd.of_float x.(i)
  | Theta j -> Dd.of_float th.(j)
  | Add (a, b) -> Dd.add (dd_eval a ~x ~th) (dd_eval b ~x ~th)
  | Sub (a, b) -> Dd.sub (dd_eval a ~x ~th) (dd_eval b ~x ~th)
  | Mul (a, b) -> Dd.mul (dd_eval a ~x ~th) (dd_eval b ~x ~th)
  | Div (a, b) -> Dd.div (dd_eval a ~x ~th) (dd_eval b ~x ~th)
  | Neg a -> Dd.neg (dd_eval a ~x ~th)
  | Pow (a, k) -> Dd.pow (dd_eval a ~x ~th) k
  | Min (a, b) -> Dd.min_ (dd_eval a ~x ~th) (dd_eval b ~x ~th)
  | Max (a, b) -> Dd.max_ (dd_eval a ~x ~th) (dd_eval b ~x ~th)
  | Ite (g, a, b) ->
      if Dd.to_float (dd_eval g ~x ~th) <= 0. then dd_eval a ~x ~th
      else dd_eval b ~x ~th

(* ------------------------------------------------------------------ *)
(* 1a. combinator chains: certified interval brackets the dd truth     *)

(* one random op applied to (certificate, dd truth) in lockstep; every
   op keeps the invariant "truth ∈ cert.value" if the combinators are
   sound *)
type op =
  | OAdd of float
  | OSub of float
  | OScale of float
  | OWiden of float * float  (** (amount, true offset |offset| <= amount) *)
  | OJoin of float
  | OCompose of float * float  (** f(v) = l·v + k *)

let apply_op (cert, truth) = function
  | OAdd b -> (Cert.add cert (Cert.exact b), Dd.add truth (Dd.of_float b))
  | OSub b -> (Cert.sub cert (Cert.exact b), Dd.sub truth (Dd.of_float b))
  | OScale c -> (Cert.scale c cert, Dd.scale c truth)
  | OWiden (w, off) ->
      (* widening models an error source: the certified answer may
         drift by up to w; the "true" answer moves by off <= w *)
      (Cert.widen ~discretisation:w cert, Dd.add truth (Dd.of_float off))
  | OJoin b ->
      (* join is a disjunction — the old truth stays a valid witness *)
      (Cert.join cert (Cert.exact b), truth)
  | OCompose (l, k) ->
      let lo = Interval.lo cert.Cert.value
      and hi = Interval.hi cert.Cert.value in
      let a = (l *. lo) +. k and b = (l *. hi) +. k in
      let value = Interval.make (Float.min a b) (Float.max a b) in
      let composed = Cert.compose ~lipschitz:(Float.abs l) ~value cert in
      (* the enclosure endpoints round in plain float: pad the ledger
         with an explicit ulp-level rounding line so the certificate
         stays an outer bracket of the dd truth *)
      let pad =
        1e-12 *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))
      in
      ( Cert.widen ~rounding:pad composed,
        Dd.add (Dd.scale l truth) (Dd.of_float k) )

let op_gen =
  QCheck.Gen.(
    let f = float_range (-10.) 10. in
    let small = float_range 0. 1. in
    frequency
      [
        (3, map (fun b -> OAdd b) f);
        (3, map (fun b -> OSub b) f);
        (3, map (fun c -> OScale c) (float_range (-4.) 4.));
        ( 2,
          map2 (fun w frac -> OWiden (w, (2. *. frac -. 1.) *. w)) small small
        );
        (2, map (fun b -> OJoin b) f);
        (2, map2 (fun l k -> OCompose (l, k)) (float_range (-3.) 3.) f);
      ])

let chain_arb =
  QCheck.make
    ~print:(fun (x0, ops) ->
      Printf.sprintf "start=%g, %d ops" x0 (List.length ops))
    QCheck.Gen.(pair (float_range (-10.) 10.) (list_size (int_range 1 8) op_gen))

let prop_chain_brackets_dd =
  QCheck.Test.make ~name:"combinator chain brackets double-double truth"
    ~count:10_000 chain_arb (fun (x0, ops) ->
      let cert, truth =
        List.fold_left apply_op (Cert.exact x0, Dd.of_float x0) ops
      in
      let t = Dd.to_float truth in
      (* a tiny absolute slack absorbs the inward rounding of the plain
         float interval endpoints; the dd truth carries ~32 digits *)
      let slack = 1e-9 *. Float.max 1. (Float.abs t) in
      Cert.brackets cert t
      || (Interval.lo cert.Cert.value -. slack <= t
         && t <= Interval.hi cert.Cert.value +. slack))

let prop_budget_lines_sane =
  QCheck.Test.make ~name:"budget lines stay non-negative along any chain"
    ~count:2_000 chain_arb (fun (x0, ops) ->
      let cert, _ =
        List.fold_left apply_op (Cert.exact x0, Dd.of_float x0) ops
      in
      List.for_all
        (fun (_, v) -> (not (Float.is_nan v)) && v >= 0.)
        (Cert.lines cert))

(* ------------------------------------------------------------------ *)
(* 1b. drift_cert vs a double-double drift evaluation per model        *)

let dd_drift model ~x ~th i =
  List.fold_left
    (fun acc (tr : Model.transition) ->
      if tr.Model.change.(i) = 0. then acc
      else
        Dd.add acc
          (Dd.mul (Dd.of_float tr.Model.change.(i)) (dd_eval tr.rate ~x ~th)))
    Dd.zero (Model.transitions model)

let test_drift_cert_brackets_dd () =
  let rng = Rng.create 42 in
  let sample (box : Optim.Box.t) =
    Array.mapi
      (fun j lo -> lo +. (Rng.float rng *. (box.Optim.Box.hi.(j) -. lo)))
      box.Optim.Box.lo
  in
  List.iter
    (fun (name, m) ->
      let certs = Certified.drift_cert m in
      let clip = Model.clip m and theta = Model.theta m in
      let dim = Model.dim m in
      for _ = 1 to 10_000 do
        let x = sample clip and th = sample theta in
        for i = 0 to dim - 1 do
          let c = certs.(i) in
          if not (Cert.is_vacuous c) then begin
            let truth = Dd.to_float (dd_drift m ~x ~th i) in
            let slack = 1e-9 *. Float.max 1. (Float.abs truth) in
            if
              not
                (Interval.lo c.Cert.value -. slack <= truth
                && truth <= Interval.hi c.Cert.value +. slack)
            then
              Alcotest.failf
                "%s: drift_cert coordinate %d %s misses dd value %.17g" name
                i (Cert.to_string c) truth
          end
        done
      done)
    (Registry.all ())

(* ------------------------------------------------------------------ *)
(* 2. adaptive sweep vs a 10x-finer fixed grid (SIR, cholera)          *)

let imprecise_of model ~n ~max_states =
  let pop = Model.population model in
  let sp =
    Ctmc_of_population.state_space ~clip:(Model.clip model) ~max_states
      ~truncation:`Adaptive pop ~n ~x0:(Model.x0 model)
  in
  let im = Ctmc_of_population.imprecise ~theta:(Model.theta model) sp pop in
  (sp, im)

let adaptive_gate name model ~n =
  let _, im = imprecise_of model ~n ~max_states:400 in
  let states = Ctmc.Imprecise.n_states im in
  let horizon = 1.0 in
  let lambda = Ctmc.Imprecise.max_exit_bound im in
  (* size ε so the projected worst-case step count T²λ²/ε stays around
     2·10^5 — the gate must run on 1-core CI *)
  let epsilon =
    Float.max 0.02 (horizon *. horizon *. lambda *. lambda /. 2e5)
  in
  (* reward with osc 1: the density of coordinate 0 scaled into [0,1] *)
  let h = Array.init states (fun i -> float_of_int (i mod 7) /. 6.) in
  List.iter
    (fun sense ->
      let adaptive =
        Ctmc.Imprecise.adaptive_series ~epsilon ~sense im ~h
          ~times:[| horizon |]
      in
      Alcotest.(check bool)
        (name ^ ": a-priori promise eps <= epsilon")
        true
        (adaptive.Ctmc.Imprecise.eps.(0) <= epsilon +. 1e-12);
      let spu_adaptive =
        Float.of_int adaptive.Ctmc.Imprecise.steps /. horizon
      in
      let spu_fixed = 10 * int_of_float (Float.ceil spu_adaptive) in
      let fixed =
        Ctmc.Imprecise.fixed_series ~steps_per_unit:spu_fixed ~sense im ~h
          ~times:[| horizon |]
      in
      let dist =
        Vec.dist_inf adaptive.Ctmc.Imprecise.values.(0)
          fixed.Ctmc.Imprecise.values.(0)
      in
      let allowance =
        adaptive.Ctmc.Imprecise.eps.(0)
        +. adaptive.Ctmc.Imprecise.rounding.(0)
        +. fixed.Ctmc.Imprecise.eps.(0)
        +. fixed.Ctmc.Imprecise.rounding.(0)
      in
      if dist > allowance then
        Alcotest.failf
          "%s (%s): adaptive is %.3g from the 10x fixed grid, certified \
           allowance %.3g (eps %.3g)"
          name
          (match sense with `Lower -> "lower" | `Upper -> "upper")
          dist allowance adaptive.Ctmc.Imprecise.eps.(0))
    [ `Lower; `Upper ]

let test_adaptive_vs_fixed_sir () =
  adaptive_gate "sir" (Registry.find_exn "sir") ~n:6

let test_adaptive_vs_fixed_cholera () =
  adaptive_gate "cholera" (Registry.find_exn "cholera") ~n:4

(* ------------------------------------------------------------------ *)
(* 3. first_passage: certified bounds on every registry model          *)

let test_first_passage_all_models () =
  List.iter
    (fun (name, m) ->
      let spec = Analysis.spec ~horizon:1. m in
      let x0 = Model.x0 m in
      (* leave the start state outside the target so τ > 0 *)
      let target (x : Vec.t) = x.(0) <= (x0.(0) /. 2.) -. 1e-9 in
      let fp =
        Analysis.first_passage
          ~times:(Vec.linspace 0. 1. 5)
          ~epsilon:0.25 ~max_states:1500 spec ~n:3 ~target
      in
      Alcotest.(check bool) (name ^ ": retained states") true (fp.states > 0);
      let nt = Array.length fp.Analysis.times in
      for j = 0 to nt - 1 do
        let lo = fp.hit_lower.(j) and hi = fp.hit_upper.(j) in
        if not (0. <= lo && lo <= hi && hi <= 1.) then
          Alcotest.failf "%s: hit bounds disordered at t=%g: [%g, %g]" name
            fp.Analysis.times.(j) lo hi;
        if j > 0 && fp.hit_lower.(j) < fp.hit_lower.(j - 1) -. 1e-12 then
          Alcotest.failf "%s: lower hitting bound not monotone" name
      done;
      if
        not
          (0. <= fp.mfpt_lower
          && fp.mfpt_lower <= fp.mfpt_upper
          && fp.mfpt_upper <= 1. +. 1e-12)
      then
        Alcotest.failf "%s: mfpt bracket disordered: [%g, %g]" name
          fp.mfpt_lower fp.mfpt_upper;
      if Cert.is_vacuous fp.cert then
        Alcotest.failf "%s: vacuous first-passage certificate %s" name
          (Cert.to_string fp.cert);
      List.iter
        (fun (line, v) ->
          if not (Float.is_finite v) then
            Alcotest.failf "%s: budget line %s not finite" name line)
        (Cert.lines fp.cert))
    (Registry.all ())

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "cert"
    [
      ( "combinators",
        [
          QCheck_alcotest.to_alcotest prop_chain_brackets_dd;
          QCheck_alcotest.to_alcotest prop_budget_lines_sane;
          Alcotest.test_case "drift_cert brackets dd reference per model"
            `Slow test_drift_cert_brackets_dd;
        ] );
      ( "adaptive_sweep",
        [
          Alcotest.test_case "within certified eps of 10x fixed grid (sir)"
            `Quick test_adaptive_vs_fixed_sir;
          Alcotest.test_case
            "within certified eps of 10x fixed grid (cholera)" `Quick
            test_adaptive_vs_fixed_cholera;
        ] );
      ( "first_passage",
        [
          Alcotest.test_case "certified bounds on all registry models" `Slow
            test_first_passage_all_models;
        ] );
    ]
