(* End-to-end smoke of the error ledger, wired into `dune runtest`
   through the @cert-smoke alias.

   A traced SIR analysis (transient bounds + first passage) must
   produce certificates whose every budget line is finite, whose
   gauges reach the trace stream, and whose intervals bracket an
   independent reference: the θ-box-midpoint chain solved by
   uniformisation is one admissible adapted process, so its hitting
   probabilities and truncated MFPT must fall inside the certified
   imprecise bounds. *)

open Umf

let check name ok =
  if not ok then begin
    Printf.eprintf "cert-smoke FAILED: %s\n%!" name;
    exit 1
  end

let finite_ledger name (c : Cert.t) =
  check (name ^ ": certificate not vacuous") (not (Cert.is_vacuous c));
  List.iter
    (fun (line, v) ->
      check
        (Printf.sprintf "%s: budget line %s finite" name line)
        (Float.is_finite v))
    (Cert.lines c)

let () =
  let model = Registry.find_exn "sir" in
  let trace_file = "cert_smoke_trace.ndjson" in
  let oc = open_out trace_file in
  let agg = Obs.Agg.create () in
  let tr = Obs.Trace.to_channel oc in
  let obs = Obs.make ~agg ~trace:tr () in
  let horizon = 2. in
  let n = 8 in
  let epsilon = 0.05 in
  let times = Vec.linspace 0. horizon 6 in
  let threshold = 0.4 in
  let target (x : Vec.t) = x.(1) >= threshold in

  (* the traced analyses under test *)
  let spec = Analysis.spec ~horizon ~obs model in
  let b =
    Analysis.transient_bounds ~times spec ~x0:(Model.x0 model) ~coord:1
  in
  finite_ledger "transient_bounds" b.Analysis.cert;
  let fp = Analysis.first_passage ~times ~epsilon spec ~n ~target in
  finite_ledger "first_passage" fp.Analysis.cert;
  Obs.Trace.flush tr;
  close_out oc;

  (* ordering invariants *)
  let nt = Array.length times in
  for j = 0 to nt - 1 do
    check "hit bounds ordered"
      (0. <= fp.hit_lower.(j)
      && fp.hit_lower.(j) <= fp.hit_upper.(j)
      && fp.hit_upper.(j) <= 1.)
  done;
  check "mfpt bracket ordered"
    (0. <= fp.mfpt_lower
    && fp.mfpt_lower <= fp.mfpt_upper
    && fp.mfpt_upper <= horizon);
  check "mfpt bracket = certificate value"
    (Interval.lo fp.cert.Cert.value = fp.mfpt_lower
    && Interval.hi fp.cert.Cert.value = fp.mfpt_upper);

  (* reference run: the θ-midpoint chain is one admissible adapted
     process — rebuild the same absorbed chain and solve it precisely *)
  let pop = Model.population model in
  let sp =
    Ctmc_of_population.state_space ~theta:(Model.theta model)
      ~clip:(Model.clip model) ~max_states:20_000 ~truncation:`Adaptive pop
      ~n ~x0:(Model.x0 model)
  in
  check "SIR lattice is exact at this n"
    (not (Ctmc_of_population.truncated sp));
  let states = Ctmc_of_population.n_states sp in
  check "same lattice as the analysis" (states = fp.Analysis.states);
  let ind =
    Ctmc_of_population.reward sp (fun x -> if target x then 1. else 0.)
  in
  let im = Ctmc_of_population.imprecise ~theta:(Model.theta model) sp pop in
  let absorbed =
    Ctmc.Imprecise.absorbing im ~target:(fun i -> ind.(i) = 1.)
  in
  let g_mid =
    Ctmc.Imprecise.generator_at absorbed
      (Optim.Box.midpoint (Model.theta model))
  in
  let p0 = Ctmc_of_population.point_mass sp in
  let hit_mid t =
    if t <= 0. then 0.
    else Ctmc.Transient.expectation g_mid ~p0 ~t (fun s -> ind.(s))
  in
  Array.iteri
    (fun j t ->
      let p = hit_mid t in
      check
        (Printf.sprintf "midpoint hitting prob inside bounds at t=%g" t)
        (fp.hit_lower.(j) -. 1e-9 <= p && p <= fp.hit_upper.(j) +. 1e-9))
    times;

  (* the midpoint truncated MFPT E[min(τ, T)] = T − ∫₀ᵀ P(τ <= s) ds,
     bracketed by left/right Riemann sums on a fine grid (P is
     nondecreasing); the certified interval must intersect it *)
  let k = 40 in
  let left = ref 0. and right = ref 0. in
  for i = 0 to k - 1 do
    let dt = horizon /. float_of_int k in
    left := !left +. (dt *. hit_mid (float_of_int i *. dt));
    right := !right +. (dt *. hit_mid (float_of_int (i + 1) *. dt))
  done;
  let ref_lo = horizon -. !right and ref_hi = horizon -. !left in
  check "certified MFPT bracket overlaps midpoint reference"
    (fp.mfpt_lower <= ref_hi +. 1e-9 && ref_lo <= fp.mfpt_upper +. 1e-9);

  (* the ledger gauges must reach the NDJSON trace stream *)
  let ic = open_in trace_file in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  check "trace stream nonempty" (len > 0);
  check "trace carries the first_passage ledger gauges"
    (let needle = "first_passage.cert" in
     let nl = String.length needle and bl = String.length body in
     let rec scan i =
       i + nl <= bl && (String.sub body i nl = needle || scan (i + 1))
     in
     scan 0);
  print_endline "cert-smoke OK"
