(* The batch determinism gate: for every registry model, the
   structure-of-arrays [Tape.Plan.run_batch] must reproduce the scalar
   [Tape.Plan.run] loop BIT FOR BIT — under the sequential chunk
   runner and under 2- and 4-domain pools.  Every consumer that
   switched to batched evaluation in this PR (hull faces, Pontryagin
   sweeps, uncertainty grids, reachability clouds, CTMC assembly)
   leans on exactly this contract, so a single bit of divergence here
   is a real bug there. *)

open Umf_numerics
module Pool = Umf_runtime.Runtime.Pool
module Model = Umf_meanfield.Model
module Population = Umf_meanfield.Population

let n_rows = 257 (* forces full chunks and a ragged tail at chunk 64 *)

(* random states from the clip box and parameters from Θ; a fixed seed
   keeps failures reproducible *)
let batch_of rng m =
  let xs =
    Mat.init n_rows (Model.dim m) (fun _ _ -> 0.)
  and ths =
    Mat.init n_rows (Stdlib.max 1 (Model.theta_dim m)) (fun _ _ -> 0.)
  in
  for i = 0 to n_rows - 1 do
    let x = Optim.Box.sample_uniform rng (Model.clip m) in
    let th = Optim.Box.sample_uniform rng (Model.theta m) in
    for j = 0 to Model.dim m - 1 do
      Mat.set xs i j x.(j)
    done;
    for j = 0 to Model.theta_dim m - 1 do
      Mat.set ths i j th.(j)
    done
  done;
  (xs, ths)

let scalar_reference plan ~xs ~ths =
  let tape = Tape.Plan.tape plan in
  let n_out = Tape.n_outputs tape in
  let out = Mat.zeros n_rows n_out in
  let row = Vec.zeros n_out in
  for i = 0 to n_rows - 1 do
    Tape.Plan.run plan ~x:(Mat.row xs i) ~th:(Mat.row ths i) ~out:row;
    for j = 0 to n_out - 1 do
      Mat.set out i j row.(j)
    done
  done;
  out

let check_bitwise name plan ~par ~xs ~ths reference =
  let n_out = Tape.n_outputs (Tape.Plan.tape plan) in
  let out = Mat.zeros n_rows n_out in
  Tape.Plan.run_batch ?par plan ~xs ~ths ~out;
  for i = 0 to n_rows - 1 do
    for j = 0 to n_out - 1 do
      let b = Mat.get out i j and s = Mat.get reference i j in
      if not (b = s || (Float.is_nan b && Float.is_nan s)) then
        Alcotest.failf "%s: row %d output %d: batch %.17g <> scalar %.17g"
          name i j b s
    done
  done

let plans_of m =
  let drift = ("drift", Model.drift_plan m) in
  match Population.rates_plan (Model.population m) with
  | Some p -> [ drift; ("rates", p) ]
  | None -> [ drift ]

let test_model (name, m) () =
  let rng = Rng.create 20260809 in
  let xs, ths = batch_of rng m in
  List.iter
    (fun (kind, plan) ->
      let reference = scalar_reference plan ~xs ~ths in
      let label domains = Printf.sprintf "%s/%s@%s" name kind domains in
      check_bitwise (label "seq") plan ~par:None ~xs ~ths reference;
      List.iter
        (fun domains ->
          Pool.with_pool ~domains (fun p ->
              check_bitwise
                (label (string_of_int domains))
                plan
                ~par:(Some (fun n f -> Pool.parallel_for ~stage:"batch-smoke" p n f))
                ~xs ~ths reference))
        [ 2; 4 ])
    (plans_of m)

(* Solver-level A/B: the batched fast paths activate when [Di.t]
   carries a plan and fall back to the scalar loops when it does not.
   Both must produce the same answer BIT FOR BIT — that is the whole
   determinism story of the batched hull faces, Pontryagin sweeps,
   uncertainty grids and reachability clouds. *)
module Di = Umf_diffinc.Di
module Hull = Umf_diffinc.Hull
module Pontryagin = Umf_diffinc.Pontryagin
module Uncertain = Umf_diffinc.Uncertain
module Reach = Umf_diffinc.Reach

let vec_eq =
  Alcotest.testable
    (fun ppf v -> Format.pp_print_string ppf (Vec.to_string v))
    (fun a b ->
      Vec.dim a = Vec.dim b
      && Array.for_all2 (fun x y -> x = y || (Float.is_nan x && Float.is_nan y)) a b)

let dis () =
  let m = Umf_models.Registry.find_exn "sir" in
  let di = Di.of_model m in
  (di, { di with Di.plan = None }, m)

let test_hull_ab () =
  let di, di_scalar, m = dis () in
  let x0 = Model.x0 m in
  let b = Hull.bounds ~clip:(Model.clip m) di ~x0 ~horizon:2. ~dt:0.05 in
  let b' = Hull.bounds ~clip:(Model.clip m) di_scalar ~x0 ~horizon:2. ~dt:0.05 in
  Array.iteri
    (fun i lo ->
      Alcotest.check vec_eq (Printf.sprintf "lower %d" i)
        b'.Hull.lower.(i) lo;
      Alcotest.check vec_eq (Printf.sprintf "upper %d" i)
        b'.Hull.upper.(i) b.Hull.upper.(i))
    b.Hull.lower

let test_pontryagin_ab () =
  let di, di_scalar, m = dis () in
  let x0 = Model.x0 m in
  let times = [| 0.5; 1.5 |] in
  let s = Pontryagin.bound_series ~steps:60 di ~x0 ~coord:1 ~times in
  let s' = Pontryagin.bound_series ~steps:60 di_scalar ~x0 ~coord:1 ~times in
  Array.iteri
    (fun i (lo, hi) ->
      let lo', hi' = s'.(i) in
      Alcotest.(check (float 0.)) (Printf.sprintf "min %d" i) lo' lo;
      Alcotest.(check (float 0.)) (Printf.sprintf "max %d" i) hi' hi)
    s

let test_uncertain_ab () =
  let di, di_scalar, m = dis () in
  let x0 = Model.x0 m in
  let times = [| 0.; 1.; 3. |] in
  let lo, hi = Uncertain.transient_envelope ~grid:5 di ~x0 ~times in
  let lo', hi' = Uncertain.transient_envelope ~grid:5 di_scalar ~x0 ~times in
  Array.iteri
    (fun i v ->
      Alcotest.check vec_eq (Printf.sprintf "lower %d" i) lo'.(i) v;
      Alcotest.check vec_eq (Printf.sprintf "upper %d" i) hi'.(i) hi.(i))
    lo

let test_reach_ab () =
  let di, di_scalar, m = dis () in
  let x0 = Model.x0 m in
  let cloud seed d =
    Reach.sample_states d ~x0 ~horizon:1.5 ~n_controls:32 (Rng.create seed)
  in
  List.iter2
    (Alcotest.check vec_eq "reached state")
    (cloud 7 di_scalar) (cloud 7 di)

let () =
  Alcotest.run "batch-smoke"
    [
      ( "bitwise",
        List.map
          (fun ((name, _) as nm) ->
            Alcotest.test_case name `Quick (test_model nm))
          (Umf_models.Registry.all ()) );
      ( "solver A/B (plan vs stripped)",
        [
          Alcotest.test_case "hull bounds" `Quick test_hull_ab;
          Alcotest.test_case "pontryagin series" `Quick test_pontryagin_ab;
          Alcotest.test_case "uncertain envelope" `Quick test_uncertain_ab;
          Alcotest.test_case "reach cloud" `Quick test_reach_ab;
        ] );
    ]
