open Umf_numerics
open Umf_meanfield
open Umf_lint

(* ------------------------------------------------------------------ *)
(* a deliberately broken model: every class of defect at once          *)
(* ------------------------------------------------------------------ *)

let broken_report () =
  let open Expr in
  let tr name change rate = { Model.name; change; rate } in
  Lint.analyze_transitions ~name:"broken"
    ~var_names:[| "X"; "Y"; "Z" |]
    ~theta_names:[| "a"; "b" |]
    ~theta:(Optim.Box.make [| 0.; 0. |] [| 1.; 1. |])
    [
      (* L001: rate certifiably negative everywhere *)
      tr "neg-rate" [| 1.; 0.; 0. |] (const (-1.));
      (* L004: out-of-range parameter reference *)
      tr "bad-theta" [| 0.; 1.; 0. |] (theta 5);
      (* L005: change vector of the wrong dimension *)
      tr "bad-change" [| 1. |] (const 1.);
      (* L002: sign not certifiable (negative at X < Y) *)
      tr "maybe-neg" [| 0.; 1.; 0. |] (theta 0 *: (var 0 -: var 1));
      (* L006: divisor interval contains zero on the unit box *)
      tr "div-zero" [| 1.; 0.; 0. |] (const 1. /: var 0);
      (* L404: drains X at a strictly positive rate even at X = 0 *)
      tr "drain" [| -1.; 0.; 0. |] (const 1.);
    ]
(* Z is never read nor moved (L401) and parameter b never read (L402) *)

let codes_of findings = List.map (fun f -> f.Lint.code) findings

let test_broken_has_errors_and_warnings () =
  let r = broken_report () in
  Alcotest.(check bool) "not ok" false (Lint.ok r);
  let errs = List.sort_uniq compare (codes_of (Lint.errors r)) in
  let warns = List.sort_uniq compare (codes_of (Lint.warnings r)) in
  (* at least 3 distinct error/warning codes, as distinct codes *)
  Alcotest.(check bool)
    (Printf.sprintf "distinct codes: %s"
       (String.concat "," (errs @ warns)))
    true
    (List.length errs + List.length warns >= 3);
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " reported as error") true (List.mem c errs))
    [ "L001"; "L004"; "L005" ];
  List.iter
    (fun c ->
      Alcotest.(check bool) (c ^ " reported as warning") true (List.mem c warns))
    [ "L002"; "L006"; "L404"; "L401"; "L402" ]

let test_broken_subjects () =
  let r = broken_report () in
  let by code = Lint.findings_with r code in
  (match by "L001" with
  | [ f ] ->
      Alcotest.(check bool) "L001 names the transition" true
        (f.Lint.subject = Lint.Transition "neg-rate")
  | fs ->
      Alcotest.failf "expected exactly one L001, got %d" (List.length fs));
  (match by "L401" with
  | [ f ] ->
      Alcotest.(check bool) "L401 names coordinate Z" true
        (f.Lint.subject = Lint.Coord 2)
  | fs ->
      Alcotest.failf "expected exactly one L401, got %d" (List.length fs));
  match by "L402" with
  | [ f ] ->
      Alcotest.(check bool) "L402 names parameter b" true
        (f.Lint.subject = Lint.Param 1)
  | fs -> Alcotest.failf "expected exactly one L402, got %d" (List.length fs)

let test_invalid_transitions_excluded () =
  (* the malformed transitions must not poison the remaining analysis:
     the drift/classification is still produced for all 3 coordinates *)
  let r = broken_report () in
  Alcotest.(check int) "classes for every coordinate" 3
    (Array.length r.Lint.classes);
  Alcotest.(check bool) "describe knows the codes" true
    (String.length (Lint.describe "L001") > 0
    && String.length (Lint.describe "L404") > 0)

(* ------------------------------------------------------------------ *)
(* integration: every bundled model must lint without errors           *)
(* ------------------------------------------------------------------ *)

let models () =
  [
    ("sir3", Lint.analyze (Umf_models.Sir.make3 Umf_models.Sir.default_params));
    ("sir", Lint.analyze (Umf_models.Sir.make Umf_models.Sir.default_params));
    ("sis", Lint.analyze (Umf_models.Sis.make Umf_models.Sis.default_params));
    ( "bike",
      Lint.analyze
        (Umf_models.Bikesharing.make Umf_models.Bikesharing.default_params) );
    ( "cholera",
      (* the model's clip box [0,1]² × [0,2] is the lint domain *)
      Lint.analyze (Umf_models.Cholera.make Umf_models.Cholera.default_params)
    );
    ( "gps-poisson",
      Lint.analyze (Umf_models.Gps.make_poisson Umf_models.Gps.default_params)
    );
    ( "gps-map",
      Lint.analyze (Umf_models.Gps.make_map Umf_models.Gps.default_params) );
    ( "jsq2",
      Lint.analyze
        (Umf_models.Loadbalance.make Umf_models.Loadbalance.default_params) );
    ( "bikenet",
      Lint.analyze
        (Umf_models.Bikenetwork.make Umf_models.Bikenetwork.default_params) );
  ]

let test_all_models_error_free () =
  List.iter
    (fun (name, r) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s has no lint errors (%s)" name
           (String.concat ","
              (List.map (fun f -> f.Lint.code) (Lint.errors r))))
        true (Lint.ok r))
    (models ())

let class_forall r pred = Array.for_all pred r.Lint.classes

let test_sir3_certified_clean () =
  let r = List.assoc "sir3" (models ()) in
  Alcotest.(check bool) "affine in theta" true
    (class_forall r (fun c -> c.Lint.affine_theta));
  Alcotest.(check bool) "multilinear" true
    (class_forall r (fun c -> c.Lint.multilinear));
  Alcotest.(check bool) "smooth" true (class_forall r (fun c -> c.Lint.smooth));
  Alcotest.(check bool) "S+I+R conservation law" true
    (List.exists
       (fun c -> c.Lint.pretty = "S + I + R")
       r.Lint.conservation);
  Alcotest.(check bool) "simplex preserving" true r.Lint.simplex_preserving;
  (match r.Lint.lipschitz with
  | Some l -> Alcotest.(check bool) "finite Lipschitz bound" true (Float.is_finite l && l > 0.)
  | None -> Alcotest.fail "expected a Lipschitz certificate");
  Alcotest.(check bool) "recommends vertex enumeration" true
    (r.Lint.recommended_opt = `Vertices)

let test_structure_classification () =
  let m = models () in
  (* SIS: affine in theta, quadratic (not multilinear), kinked *)
  let sis = List.assoc "sis" m in
  Alcotest.(check bool) "sis affine" true
    (class_forall sis (fun c -> c.Lint.affine_theta));
  Alcotest.(check bool) "sis not multilinear" false
    (class_forall sis (fun c -> c.Lint.multilinear));
  Alcotest.(check bool) "sis kinked" false
    (class_forall sis (fun c -> c.Lint.smooth));
  (* GPS: affine in theta (service carries no theta) but has Div/Ite *)
  let gps = List.assoc "gps-poisson" m in
  Alcotest.(check bool) "gps affine" true
    (class_forall gps (fun c -> c.Lint.affine_theta));
  Alcotest.(check bool) "gps recommends vertices" true
    (gps.Lint.recommended_opt = `Vertices);
  Alcotest.(check bool) "gps not multilinear" false
    (class_forall gps (fun c -> c.Lint.multilinear));
  (* jsq-2: the power-of-two-choices x^2 terms are not multilinear *)
  let jsq = List.assoc "jsq2" m in
  Alcotest.(check bool) "jsq2 affine" true
    (class_forall jsq (fun c -> c.Lint.affine_theta));
  Alcotest.(check bool) "jsq2 not multilinear" false
    (class_forall jsq (fun c -> c.Lint.multilinear))

let test_bikenet_conservation () =
  let r = List.assoc "bikenet" (models ()) in
  Alcotest.(check bool) "fleet conservation law" true
    (List.exists
       (fun c -> c.Lint.pretty = "S1 + S2 + S3 + Z")
       r.Lint.conservation)

let test_report_printing () =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Format.fprintf fmt "%a@." Lint.pp_report (broken_report ());
  let s = Buffer.contents buf in
  (* severities and codes appear in the rendered report *)
  List.iter
    (fun needle ->
      let n = String.length needle and ls = String.length s in
      let rec go i = i + n <= ls && (String.sub s i n = needle || go (i + 1)) in
      Alcotest.(check bool) ("report mentions " ^ needle) true (go 0))
    [ "broken"; "L001"; "error"; "warning" ]

(* ------------------------------------------------------------------ *)
(* the Certified gate refuses Error-level models                       *)
(* ------------------------------------------------------------------ *)

let negative_rate_model () =
  let open Expr in
  Model.make ~name:"bad" ~var_names:[| "X" |] ~theta_names:[| "t" |]
    ~theta:(Optim.Box.make [| 0. |] [| 1. |])
    ~x0:[| 0.5 |]
    [ { Model.name = "sink"; change = [| 1. |]; rate = const (-2.) } ]

let test_certified_gate_rejects () =
  let s = negative_rate_model () in
  (match Umf_diffinc.Certified.pontryagin s ~x0:[| 0.5 |] ~horizon:1. ~sense:`Max (`Coord 0) with
  | _ -> Alcotest.fail "expected Rejected"
  | exception Umf_diffinc.Certified.Rejected r ->
      Alcotest.(check bool) "report carries L001" true
        (List.exists (fun f -> f.Lint.code = "L001") (Lint.errors r)));
  (match Umf_diffinc.Certified.hull_bounds s ~x0:[| 0.5 |] ~horizon:1. ~dt:0.1 with
  | _ -> Alcotest.fail "expected Rejected (hull)"
  | exception Umf_diffinc.Certified.Rejected _ -> ());
  (* the gate can be disabled explicitly *)
  match
    Umf_diffinc.Certified.pontryagin ~lint:false s ~x0:[| 0.5 |] ~horizon:0.5
      ~sense:`Max (`Coord 0)
  with
  | r -> Alcotest.(check bool) "runs ungated" true (Float.is_finite r.Umf_diffinc.Pontryagin.value)
  | exception Umf_diffinc.Certified.Rejected _ ->
      Alcotest.fail "lint:false must not reject"

let () =
  Alcotest.run "umf_lint"
    [
      ( "broken fixture",
        [
          Alcotest.test_case "errors and warnings" `Quick
            test_broken_has_errors_and_warnings;
          Alcotest.test_case "subjects" `Quick test_broken_subjects;
          Alcotest.test_case "invalid transitions excluded" `Quick
            test_invalid_transitions_excluded;
          Alcotest.test_case "report printing" `Quick test_report_printing;
        ] );
      ( "builtin models",
        [
          Alcotest.test_case "all error-free" `Quick test_all_models_error_free;
          Alcotest.test_case "sir3 certified clean" `Quick
            test_sir3_certified_clean;
          Alcotest.test_case "structure classification" `Quick
            test_structure_classification;
          Alcotest.test_case "bikenet conservation" `Quick
            test_bikenet_conservation;
        ] );
      ( "certified gate",
        [
          Alcotest.test_case "rejects error-level models" `Quick
            test_certified_gate_rejects;
        ] );
    ]
