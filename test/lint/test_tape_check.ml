open Umf_numerics
open Umf_meanfield
open Umf_lint
module TC = Tape_check

let iv = Interval.make

let box_ivs (b : Optim.Box.t) =
  Array.init (Vec.dim b.Optim.Box.lo) (fun i ->
      iv b.Optim.Box.lo.(i) b.Optim.Box.hi.(i))

let codes r = List.map (fun f -> f.TC.code) r.TC.findings

let has r code = TC.findings_with r code <> []

(* ------------------------------------------------------------------ *)
(* double-double reference arithmetic (~1e-32 relative): the "exact"
   side of the soundness contract, far below any certifiable bound     *)
(* ------------------------------------------------------------------ *)

module Dd = struct
  type t = { h : float; l : float }

  let of_float x = { h = x; l = 0. }

  let two_sum a b =
    let s = a +. b in
    let bb = s -. a in
    (s, (a -. (s -. bb)) +. (b -. bb))

  let quick_two_sum a b =
    let s = a +. b in
    (s, b -. (s -. a))

  let two_prod a b =
    let p = a *. b in
    (p, Float.fma a b (-.p))

  let norm (s, e) =
    if Float.is_finite s then
      let h, l = quick_two_sum s e in
      { h; l }
    else { h = s; l = 0. }

  let add x y =
    let s, e = two_sum x.h y.h in
    norm (s, e +. x.l +. y.l)

  let neg x = { h = -.x.h; l = -.x.l }

  let sub x y = add x (neg y)

  let mul x y =
    let p, e = two_prod x.h y.h in
    norm (p, e +. (x.h *. y.l) +. (x.l *. y.h))

  let div x y =
    let q1 = x.h /. y.h in
    if not (Float.is_finite q1) then of_float q1
    else
      let r = sub x (mul (of_float q1) y) in
      norm (quick_two_sum q1 (r.h /. y.h))

  let to_float x = x.h +. x.l
end

(* Reference evaluator: the same instruction stream as {!Tape.Plan.run},
   executed twice per slot — in plain floats (replicating the runtime
   bit for bit, asserted below) and in double-double.  Branches follow
   the FLOAT comparisons, matching the analyzer's branch-local error
   contract: the bound is against the exact result of the branch the
   floats chose. *)
let eval_ref tape =
  let n_slots = Tape.n_slots tape in
  let instrs = Tape.instructions tape in
  let kinds = Array.init n_slots (Tape.slot_kind tape) in
  let outs = Tape.output_slots tape in
  fun (x : Vec.t) (th : Vec.t) ->
    let fl = Array.make n_slots 0. in
    let dd = Array.make n_slots (Dd.of_float 0.) in
    let set s v =
      fl.(s) <- v;
      dd.(s) <- Dd.of_float v
    in
    Array.iteri
      (fun s -> function
        | Tape.Slot_const c -> set s c
        | Tape.Slot_var i -> set s x.(i)
        | Tape.Slot_theta j -> set s th.(j)
        | Tape.Slot_temp -> ())
      kinds;
    Array.iter
      (fun (dst, ins) ->
        match ins with
        | Tape.V_add (a, b) ->
            fl.(dst) <- fl.(a) +. fl.(b);
            dd.(dst) <- Dd.add dd.(a) dd.(b)
        | Tape.V_sub (a, b) ->
            fl.(dst) <- fl.(a) -. fl.(b);
            dd.(dst) <- Dd.sub dd.(a) dd.(b)
        | Tape.V_mul (a, b) ->
            fl.(dst) <- fl.(a) *. fl.(b);
            dd.(dst) <- Dd.mul dd.(a) dd.(b)
        | Tape.V_div (a, b) ->
            fl.(dst) <- fl.(a) /. fl.(b);
            dd.(dst) <- Dd.div dd.(a) dd.(b)
        | Tape.V_neg a ->
            fl.(dst) <- -.fl.(a);
            dd.(dst) <- Dd.neg dd.(a)
        | Tape.V_pow (a, n) ->
            (* same left fold from 1. as the runtime *)
            let accf = ref 1. and accd = ref (Dd.of_float 1.) in
            for _ = 1 to n do
              accf := !accf *. fl.(a);
              accd := Dd.mul !accd dd.(a)
            done;
            fl.(dst) <- !accf;
            dd.(dst) <- !accd
        | Tape.V_min (a, b) ->
            fl.(dst) <- Float.min fl.(a) fl.(b);
            dd.(dst) <- (if fl.(dst) = fl.(a) then dd.(a) else dd.(b))
        | Tape.V_max (a, b) ->
            fl.(dst) <- Float.max fl.(a) fl.(b);
            dd.(dst) <- (if fl.(dst) = fl.(a) then dd.(a) else dd.(b))
        | Tape.V_ite (g, a, b) ->
            let c = if fl.(g) <= 0. then a else b in
            fl.(dst) <- fl.(c);
            dd.(dst) <- dd.(c)
        | Tape.V_muladd (a, b, c) ->
            fl.(dst) <- (fl.(a) *. fl.(b)) +. fl.(c);
            dd.(dst) <- Dd.add (Dd.mul dd.(a) dd.(b)) dd.(c)
        | Tape.V_submul (a, b, c) ->
            fl.(dst) <- fl.(a) -. (fl.(b) *. fl.(c));
            dd.(dst) <- Dd.sub dd.(a) (Dd.mul dd.(b) dd.(c))
        | Tape.V_mulsub (a, b, c) ->
            fl.(dst) <- (fl.(a) *. fl.(b)) -. fl.(c);
            dd.(dst) <- Dd.sub (Dd.mul dd.(a) dd.(b)) dd.(c))
      instrs;
    (Array.map (fun s -> fl.(s)) outs, Array.map (fun s -> dd.(s)) outs)

(* ------------------------------------------------------------------ *)
(* soundness: 10^4 random points per bundled model                     *)
(* ------------------------------------------------------------------ *)

let points = 10_000

let test_soundness name m () =
  let tape = Model.drift_tape m in
  let x_ivs = box_ivs (Model.clip m) and th_ivs = box_ivs (Model.theta m) in
  let rep = TC.analyze tape ~x:x_ivs ~th:th_ivs in
  Alcotest.(check bool)
    (Printf.sprintf "%s float-safe (%s)" name (String.concat "," (codes rep)))
    true rep.TC.float_safe;
  let reference = eval_ref tape in
  let rng = Rng.create 20260809 in
  for _ = 1 to points do
    let x = Optim.Box.sample_uniform rng (Model.clip m) in
    let th = Optim.Box.sample_uniform rng (Model.theta m) in
    let v = Tape.Plan.run_alloc (Tape.Plan.make tape) ~x ~th in
    let fl, dd = reference x th in
    Array.iteri
      (fun i vi ->
        let o = rep.TC.outputs.(i) in
        if Float.is_nan vi then
          Alcotest.failf "%s: output %d is NaN at a sampled point" name i;
        if not (Interval.mem vi o.TC.range) then
          Alcotest.failf "%s: output %d value %.17g escapes [%g, %g]" name i
            vi
            (Interval.lo o.TC.range)
            (Interval.hi o.TC.range);
        (* the reference replication is itself validated against the
           runtime before its double-double twin is trusted *)
        if fl.(i) <> vi then
          Alcotest.failf
            "%s: reference evaluator diverges from the tape runtime (%.17g vs %.17g)"
            name fl.(i) vi;
        if Float.is_finite o.TC.abs_err then begin
          let gap =
            Float.abs (Dd.to_float (Dd.sub (Dd.of_float vi) dd.(i)))
          in
          if gap > (o.TC.abs_err *. (1. +. 1e-9)) +. 1e-300 then
            Alcotest.failf
              "%s: output %d float-vs-exact gap %.3g exceeds certified %.3g"
              name i gap o.TC.abs_err
        end)
      v
  done

(* ------------------------------------------------------------------ *)
(* fixtures: one tape per T-code                                       *)
(* ------------------------------------------------------------------ *)

let analyze_exprs exprs ~x ~th =
  TC.analyze (Tape.compile exprs) ~x:(Array.of_list x) ~th:(Array.of_list th)

let sev r code =
  match TC.findings_with r code with
  | f :: _ -> Some f.TC.severity
  | [] -> None

let check_code r code severity =
  Alcotest.(check bool)
    (Printf.sprintf "%s reported (have: %s)" code (String.concat "," (codes r)))
    true (has r code);
  Alcotest.(check bool)
    (Printf.sprintf "%s severity" code)
    true
    (sev r code = Some severity)

let test_division_codes () =
  let open Expr in
  (* divisor enclosure contains zero: reachable, not certain *)
  let r = analyze_exprs [| const 1. /: var 0 |] ~x:[ iv 0. 1. ] ~th:[] in
  check_code r "T001" TC.Warning;
  check_code r "T103" TC.Warning;
  check_code r "T401" TC.Warning;
  Alcotest.(check bool) "possible div-zero is not an error" true (TC.ok r);
  Alcotest.(check bool) "not float-safe" false r.TC.float_safe;
  Alcotest.(check bool) "error bound uncertifiable" false
    (Float.is_finite r.TC.outputs.(0).TC.abs_err);
  (* divisor identically zero: certain, an error *)
  let r = analyze_exprs [| var 0 /: const 0. |] ~x:[ iv 0. 1. ] ~th:[] in
  check_code r "T002" TC.Error;
  Alcotest.(check bool) "certain div-zero is an error" false (TC.ok r)

let test_nan_overflow_codes () =
  let open Expr in
  (* inf - inf is reachable once both quotients blow up *)
  let r =
    analyze_exprs
      [| (const 1. /: var 0) -: (const 2. /: var 0) |]
      ~x:[ iv 0. 1. ] ~th:[]
  in
  check_code r "T003" TC.Warning;
  Alcotest.(check bool) "NaN reachable on the output" true
    r.TC.outputs.(0).TC.may_be_nan;
  (* finite operands, overflowing square *)
  let r =
    analyze_exprs [| pow (theta 0 *: const 1e200) 2 |] ~x:[] ~th:[ iv 0. 1. ]
  in
  check_code r "T004" TC.Warning

let test_cancellation_and_guard_codes () =
  let open Expr in
  let r =
    analyze_exprs
      [| (var 0 +: const 1e18) -: const 1e18 |]
      ~x:[ iv 0. 1. ] ~th:[]
  in
  check_code r "T102" TC.Warning;
  let r =
    analyze_exprs
      [| Ite (var 0 -: const 0.5, const 1., const 2.) |]
      ~x:[ iv 0. 1. ] ~th:[]
  in
  check_code r "T104" TC.Info

let test_constant_dead_sign_codes () =
  let open Expr in
  (* max(5, theta) == 5 over [0,1]: constant instruction AND output *)
  let r = analyze_exprs [| max_ (const 5.) (theta 0) |] ~x:[] ~th:[ iv 0. 1. ] in
  check_code r "T301" TC.Info;
  check_code r "T302" TC.Info;
  Alcotest.(check bool) "output marked constant" true
    r.TC.outputs.(0).TC.constant;
  (* var 0 is never read *)
  let r = analyze_exprs [| var 1 |] ~x:[ iv 0. 1.; iv 0. 1. ] ~th:[] in
  check_code r "T303" TC.Warning;
  (match TC.findings_with r "T303" with
  | [ f ] ->
      Alcotest.(check bool) "T303 names the dead slot" true
        (f.TC.subject = TC.Var_slot 0)
  | fs -> Alcotest.failf "expected one T303, got %d" (List.length fs));
  (* certified positivity *)
  let r = analyze_exprs [| theta 0 +: const 1. |] ~x:[] ~th:[ iv 0. 1. ] in
  check_code r "T201" TC.Info;
  Alcotest.(check bool) "sign is Pos" true (r.TC.outputs.(0).TC.sign = TC.Pos);
  (* a clean tape earns the safety and error-bound certificates *)
  let r = analyze_exprs [| theta 0 *: var 0 |] ~x:[ iv 0. 1. ] ~th:[ iv 0. 1. ] in
  check_code r "T005" TC.Info;
  check_code r "T101" TC.Info

let test_ranges_total () =
  let open Expr in
  let tape = Tape.compile [| const 1. /: var 0 |] in
  let x = [| iv 0. 1. |] and th = [||] in
  (* the strict evaluator raises; the lint-path replacement must not *)
  (match Tape.Plan.run_interval (Tape.Plan.make tape) ~x ~th with
  | _ -> Alcotest.fail "Tape.Plan.run_interval should raise Division_by_zero"
  | exception Division_by_zero -> ());
  let rs = TC.ranges tape ~x ~th in
  Alcotest.(check bool) "unbounded enclosure instead of an exception" true
    (Interval.lo rs.(0) = Float.neg_infinity
    && Interval.hi rs.(0) = Float.infinity)

(* ------------------------------------------------------------------ *)
(* Lint integration: merged T-findings, Jacobian sign facts, the
   certified vertex rule where the old heuristic differs               *)
(* ------------------------------------------------------------------ *)

let tr name change rate = { Model.name; change; rate }

let crossterm_model () =
  (* rate theta0*theta1*x0: multilinear but NOT affine in theta — the
     old syntactic heuristic refuses vertex enumeration here *)
  let open Expr in
  Model.make ~name:"crossterm" ~var_names:[| "X" |]
    ~theta_names:[| "a"; "b" |]
    ~theta:(Optim.Box.make [| 0.1; 0.1 |] [| 1.; 1. |])
    ~x0:[| 0.5 |]
    [ tr "grow" [| 1. |] (theta 0 *: theta 1 *: var 0) ]

let test_certified_beats_heuristic () =
  let m = crossterm_model () in
  (* the pre-existing syntactic heuristic falls back to a box search *)
  Alcotest.(check bool) "old heuristic: box" true
    (Model.hamiltonian_opt m = `Box 5);
  let r = Lint.analyze ~tape:true m in
  Alcotest.(check bool) "vertex optimality proven" true r.Lint.vertex_certified;
  Alcotest.(check bool) "recommendation upgraded to vertices" true
    (r.Lint.recommended_opt = `Vertices);
  Alcotest.(check bool) "T203 records the certificate" true
    (Lint.findings_with r "T203" <> []);
  (* and the Certified pipeline actually runs with vertex enumeration *)
  let res =
    Umf_diffinc.Certified.pontryagin m ~x0:[| 0.5 |] ~horizon:1. ~sense:`Max
      (`Coord 0)
  in
  Alcotest.(check bool) "Pontryagin used vertices" true
    (res.Umf_diffinc.Pontryagin.opt = `Vertices)

let test_theta_kink_not_certified () =
  (* min(theta, c) is concave in theta: a vertex arg max is NOT provable
     and the analyzer must say so instead of guessing *)
  let open Expr in
  let m =
    Model.make ~name:"kinked" ~var_names:[| "X" |] ~theta_names:[| "a" |]
      ~theta:(Optim.Box.make [| 0. |] [| 1. |])
      ~x0:[| 0.5 |]
      [ tr "grow" [| 1. |] (min_ (theta 0) (const 0.5) *: var 0) ]
  in
  let r = Lint.analyze ~tape:true m in
  Alcotest.(check bool) "not vertex certified" false r.Lint.vertex_certified;
  Alcotest.(check bool) "T204 reported" true (Lint.findings_with r "T204" <> []);
  Alcotest.(check bool) "falls back to box search" true
    (r.Lint.recommended_opt = `Box 5)

let test_jacobian_sign_facts () =
  let open Expr in
  let m =
    Model.make ~name:"drain" ~var_names:[| "X" |] ~theta_names:[| "a" |]
      ~theta:(Optim.Box.make [| 0. |] [| 1. |])
      ~x0:[| 0.5 |]
      [ tr "drain" [| -1. |] (theta 0 *: var 0) ]
  in
  (* drift = -a*X, so df/da = -X <= 0: a certified monotonicity fact *)
  let r = Lint.analyze ~tape:true m in
  match Lint.findings_with r "T202" with
  | [ f ] ->
      Alcotest.(check bool) "T202 names the parameter" true
        (f.Lint.subject = Lint.Param 0)
  | fs -> Alcotest.failf "expected one T202, got %d" (List.length fs)

let test_lint_totality_on_division () =
  (* satellite contract: a zero-containing divisor in a rate must come
     back as findings naming the offender — never Division_by_zero *)
  let open Expr in
  let m =
    Model.make ~name:"divzero" ~var_names:[| "X" |] ~theta_names:[| "a" |]
      ~theta:(Optim.Box.make [| 0. |] [| 1. |])
      ~x0:[| 0.5 |]
      [ tr "quotient" [| 1. |] (const 1. /: var 0) ]
  in
  let r = Lint.analyze ~tape:true m in
  Alcotest.(check bool) "L006 division-freedom not certified" true
    (Lint.findings_with r "L006" <> []);
  Alcotest.(check bool) "T001 names the instruction" true
    (Lint.findings_with r "T001" <> [])

let test_certified_gate_rejects_tape_error () =
  let open Expr in
  let m =
    Model.make ~name:"certain-div0" ~var_names:[| "X" |]
      ~theta_names:[| "a" |]
      ~theta:(Optim.Box.make [| 0. |] [| 1. |])
      ~x0:[| 0.5 |]
      [ tr "boom" [| 1. |] (var 0 /: const 0.) ]
  in
  match
    Umf_diffinc.Certified.pontryagin m ~x0:[| 0.5 |] ~horizon:1. ~sense:`Max
      (`Coord 0)
  with
  | _ -> Alcotest.fail "expected Rejected on a certain division by zero"
  | exception Umf_diffinc.Certified.Rejected r ->
      Alcotest.(check bool) "report carries T002" true
        (List.exists (fun f -> f.Lint.code = "T002") (Lint.errors r))

(* ------------------------------------------------------------------ *)
(* NDJSON round-trip                                                   *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let module J = Umf_obs.Obs.Json in
  let m = Umf_models.Sir.make Umf_models.Sir.default_params in
  let r = Lint.analyze ~tape:true m in
  Alcotest.(check bool) "sir has findings to serialise" true
    (r.Lint.findings <> []);
  List.iter
    (fun f ->
      let parsed = J.of_string (J.to_string (Lint.finding_to_json r f)) in
      Alcotest.(check bool) "code survives" true
        (J.member "code" parsed = Some (J.Str f.Lint.code));
      Alcotest.(check bool) "model survives" true
        (J.member "model" parsed = Some (J.Str "sir"));
      Alcotest.(check bool) "message survives" true
        (J.member "message" parsed = Some (J.Str f.Lint.message)))
    r.Lint.findings;
  let s = J.of_string (J.to_string (Lint.summary_to_json r)) in
  Alcotest.(check bool) "summary marker" true
    (J.member "summary" s = Some (J.Bool true));
  Alcotest.(check bool) "summary names the model" true
    (J.member "model" s = Some (J.Str "sir"));
  Alcotest.(check bool) "summary carries float_safe" true
    (J.member "float_safe" s = Some (J.Bool true));
  Alcotest.(check bool) "summary counts errors" true
    (J.member "errors" s = Some (J.Num 0.))

let () =
  let soundness =
    List.map
      (fun (name, m) ->
        Alcotest.test_case
          (Printf.sprintf "%s sound at %d points" name points)
          `Quick (test_soundness name m))
      (Umf_models.Registry.all ())
  in
  Alcotest.run "umf_tape_check"
    [
      ("soundness", soundness);
      ( "fixtures",
        [
          Alcotest.test_case "division codes" `Quick test_division_codes;
          Alcotest.test_case "nan/overflow codes" `Quick
            test_nan_overflow_codes;
          Alcotest.test_case "cancellation and guards" `Quick
            test_cancellation_and_guard_codes;
          Alcotest.test_case "constant/dead/sign codes" `Quick
            test_constant_dead_sign_codes;
          Alcotest.test_case "total interval ranges" `Quick test_ranges_total;
        ] );
      ( "lint integration",
        [
          Alcotest.test_case "certified vertex rule beats heuristic" `Quick
            test_certified_beats_heuristic;
          Alcotest.test_case "theta kink blocks certification" `Quick
            test_theta_kink_not_certified;
          Alcotest.test_case "jacobian sign facts" `Quick
            test_jacobian_sign_facts;
          Alcotest.test_case "division is total in lint paths" `Quick
            test_lint_totality_on_division;
          Alcotest.test_case "certified gate rejects T002" `Quick
            test_certified_gate_rejects_tape_error;
        ] );
      ( "json",
        [ Alcotest.test_case "ndjson round-trip" `Quick test_json_roundtrip ] );
    ]
