(* The umf_obs layer itself: aggregator semantics under a fake clock
   (span nesting, counter sums, gauge envelopes), the JSON value
   round-trip, the NDJSON trace sink's event schema, and the
   obs-off/obs-on determinism of the solvers (sequential and on a
   4-domain pool). *)
open Umf

(* --- aggregator ------------------------------------------------- *)

(* a hand-cranked clock makes span durations exact *)
let fake_clock t = fun () -> !t

let test_agg_span_nesting () =
  let t = ref 0. in
  let agg = Obs.Agg.create () in
  let obs = Obs.make ~clock:(fake_clock t) ~agg () in
  let outer = Obs.span_begin obs "outer" in
  t := 1.;
  let inner1 = Obs.span_begin obs "inner" in
  t := 2.;
  Obs.span_end obs inner1;
  t := 3.;
  let inner2 = Obs.span_begin obs "inner" in
  t := 5.;
  Obs.span_end obs inner2;
  t := 10.;
  Obs.span_end obs outer;
  let st name =
    match Obs.Agg.span_stat agg name with
    | Some st -> st
    | None -> Alcotest.failf "no span row for %s" name
  in
  let o = st "outer" and i = st "inner" in
  Alcotest.(check int) "outer calls" 1 o.Obs.Agg.calls;
  Alcotest.(check (float 1e-12)) "outer total" 10. o.Obs.Agg.total;
  Alcotest.(check (float 1e-12)) "outer max" 10. o.Obs.Agg.max;
  Alcotest.(check int) "inner calls" 2 i.Obs.Agg.calls;
  Alcotest.(check (float 1e-12)) "inner total" 3. i.Obs.Agg.total;
  Alcotest.(check (float 1e-12)) "inner max" 2. i.Obs.Agg.max;
  (* nested spans never leak into the enclosing row *)
  Alcotest.(check bool) "outer >= sum of inners" true
    (o.Obs.Agg.total >= i.Obs.Agg.total)

let test_agg_counter_sums () =
  let agg = Obs.Agg.create () in
  let obs = Obs.make ~agg () in
  Obs.count obs "c" 3;
  Obs.count obs "c" 4;
  Obs.add obs "c" 0.5;
  Obs.add obs "other" 2.;
  Alcotest.(check (float 1e-12)) "summed" 7.5 (Obs.Agg.counter agg "c");
  Alcotest.(check (float 1e-12)) "independent" 2. (Obs.Agg.counter agg "other");
  Alcotest.(check (float 1e-12)) "absent is 0" 0. (Obs.Agg.counter agg "nope");
  Alcotest.(check int) "two rows" 2 (List.length (Obs.Agg.counters agg));
  Obs.Agg.reset agg;
  Alcotest.(check (float 1e-12)) "reset" 0. (Obs.Agg.counter agg "c")

let test_agg_gauges () =
  let agg = Obs.Agg.create () in
  let obs = Obs.make ~agg () in
  Obs.gauge obs "g" 3.;
  Obs.gauge obs "g" 1.;
  Obs.gauge obs "g" 2.;
  match Obs.Agg.gauge_stat agg "g" with
  | None -> Alcotest.fail "no gauge row"
  | Some g ->
      Alcotest.(check (float 1e-12)) "last" 2. g.Obs.Agg.last;
      Alcotest.(check (float 1e-12)) "min" 1. g.Obs.Agg.g_min;
      Alcotest.(check (float 1e-12)) "max" 3. g.Obs.Agg.g_max;
      Alcotest.(check int) "samples" 3 g.Obs.Agg.samples

let test_off_is_inert () =
  Alcotest.(check bool) "off disabled" false (Obs.enabled Obs.off);
  (* probes on off are no-ops and ending the null span is safe *)
  Obs.count Obs.off "c" 1;
  Obs.gauge Obs.off "g" 1.;
  let sp = Obs.span_begin Obs.off "s" in
  Obs.span_end Obs.off sp;
  (* make with no sink degenerates to off *)
  Alcotest.(check bool) "sinkless make disabled" false
    (Obs.enabled (Obs.make ()))

(* --- JSON ------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Obs.Json.Obj
      [
        ("s", Obs.Json.Str "a \"quoted\"\n\ttab");
        ("n", Obs.Json.Num 0.1);
        ("big", Obs.Json.Num 1e17);
        ("neg", Obs.Json.Num (-42.));
        ("b", Obs.Json.Bool true);
        ("z", Obs.Json.Null);
        ("a", Obs.Json.Arr [ Obs.Json.Num 1.; Obs.Json.Bool false ]);
      ]
  in
  let v' = Obs.Json.of_string (Obs.Json.to_string v) in
  Alcotest.(check bool) "round-trips" true (v = v');
  Alcotest.(check bool) "member" true
    (Obs.Json.member "b" v' = Some (Obs.Json.Bool true));
  (* non-finite numbers degrade to null rather than invalid JSON *)
  Alcotest.(check string) "nan is null" "null"
    (Obs.Json.to_string (Obs.Json.Num Float.nan));
  Alcotest.(check bool) "malformed input raises" true
    (match Obs.Json.of_string "{" with
    | exception Failure _ -> true
    | _ -> false)

(* --- trace sink ------------------------------------------------- *)

let test_trace_schema () =
  let file = Filename.temp_file "umf_test_obs" ".ndjson" in
  let oc = open_out file in
  let tr = Obs.Trace.to_channel oc in
  let t = ref 0. in
  let obs = Obs.make ~clock:(fake_clock t) ~trace:tr () in
  let sp = Obs.span_begin obs "work" in
  t := 2.5;
  Obs.span_end ~metrics:[ ("iters", 7.) ] obs sp;
  Obs.count obs "hits" 3;
  Obs.gauge obs "width" 0.25;
  Obs.Trace.flush tr;
  close_out oc;
  let ic = open_in file in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove file;
  let events = List.rev_map Obs.Json.of_string !lines in
  Alcotest.(check int) "three events" 3 (List.length events);
  let num name ev =
    match Obs.Json.member name ev with
    | Some (Obs.Json.Num v) -> v
    | _ -> Alcotest.failf "missing numeric field %s" name
  in
  let find kind name =
    match
      List.find_opt
        (fun ev ->
          Obs.Json.member "ev" ev = Some (Obs.Json.Str kind)
          && Obs.Json.member "name" ev = Some (Obs.Json.Str name))
        events
    with
    | Some ev -> ev
    | None -> Alcotest.failf "no %s event named %s" kind name
  in
  let span = find "span" "work" in
  Alcotest.(check (float 1e-12)) "span end time" 2.5 (num "t" span);
  Alcotest.(check (float 1e-12)) "span duration" 2.5 (num "dur" span);
  Alcotest.(check (float 1e-12)) "extra metric field" 7. (num "iters" span);
  Alcotest.(check (float 1e-12)) "count value" 3. (num "v" (find "count" "hits"));
  Alcotest.(check (float 1e-12)) "gauge value" 0.25
    (num "v" (find "gauge" "width"))

(* --- solver determinism ---------------------------------------- *)

let p = Sir.default_params

let model = Sir.make p

let times = [| 0.5; 1.; 2. |]

(* obs on vs off must be bit-identical, sequentially and on a pool *)
let test_determinism_bounds () =
  let spec ?pool ?obs () =
    Analysis.spec ~scenario:(Analysis.Uncertain 5) ~steps:60 ?pool ?obs model
  in
  let plain = Analysis.transient_bounds ~times (spec ()) ~x0:Sir.x0 ~coord:1 in
  let seq_obs =
    let agg = Obs.Agg.create () in
    Analysis.transient_bounds ~times
      (spec ~obs:(Obs.make ~agg ()) ())
      ~x0:Sir.x0 ~coord:1
  in
  let pool_obs, pool_spans =
    Runtime.Pool.with_pool ~domains:4 (fun pool ->
        let agg = Obs.Agg.create () in
        let b =
          Analysis.transient_bounds ~times
            (spec ~pool ~obs:(Obs.make ~agg ()) ())
            ~x0:Sir.x0 ~coord:1
        in
        (b, Obs.Agg.span_stats agg))
  in
  Alcotest.(check bool) "seq obs-on identical" true
    (plain.Analysis.lower = seq_obs.Analysis.lower
    && plain.Analysis.upper = seq_obs.Analysis.upper);
  Alcotest.(check bool) "4-domain obs-on identical" true
    (plain.Analysis.lower = pool_obs.Analysis.lower
    && plain.Analysis.upper = pool_obs.Analysis.upper);
  Alcotest.(check bool) "pool stage span captured" true
    (List.mem_assoc "pool.uncertain-sweep" pool_spans)

let test_determinism_cloud () =
  let spec ?pool ?obs () = Analysis.spec ~horizon:6. ?pool ?obs model in
  let cloud s =
    (Analysis.stationary_cloud s ~n:100 ~x0:Sir.x0
       ~policy:(Sir.policy_theta1 p) ~warmup:2. ~samples:8 ~seed:7)
      .Analysis.states
  in
  let plain = cloud (spec ()) in
  let seq_obs = cloud (spec ~obs:(Obs.make ~agg:(Obs.Agg.create ()) ()) ()) in
  let pool_obs =
    Runtime.Pool.with_pool ~domains:4 (fun pool ->
        cloud (spec ~pool ~obs:(Obs.make ~agg:(Obs.Agg.create ()) ()) ()))
  in
  Alcotest.(check bool) "seq obs-on identical" true (plain = seq_obs);
  Alcotest.(check bool) "4-domain obs-on identical" true (plain = pool_obs)

let () =
  Alcotest.run "umf_obs"
    [
      ( "agg",
        [
          Alcotest.test_case "span nesting" `Quick test_agg_span_nesting;
          Alcotest.test_case "counter sums" `Quick test_agg_counter_sums;
          Alcotest.test_case "gauges" `Quick test_agg_gauges;
          Alcotest.test_case "off is inert" `Quick test_off_is_inert;
        ] );
      ( "json",
        [ Alcotest.test_case "round-trip" `Quick test_json_roundtrip ] );
      ( "trace",
        [ Alcotest.test_case "NDJSON schema" `Quick test_trace_schema ] );
      ( "determinism",
        [
          Alcotest.test_case "bounds obs on/off" `Quick
            test_determinism_bounds;
          Alcotest.test_case "cloud obs on/off" `Quick test_determinism_cloud;
        ] );
    ]
