(* The umf_obs layer itself: aggregator semantics under a fake clock
   (span nesting, counter sums, gauge envelopes), the JSON value
   round-trip, the NDJSON trace sink's event schema, and the
   obs-off/obs-on determinism of the solvers (sequential and on a
   4-domain pool). *)
open Umf

(* --- aggregator ------------------------------------------------- *)

(* a hand-cranked clock makes span durations exact *)
let fake_clock t = fun () -> !t

let test_agg_span_nesting () =
  let t = ref 0. in
  let agg = Obs.Agg.create () in
  let obs = Obs.make ~clock:(fake_clock t) ~agg () in
  let outer = Obs.span_begin obs "outer" in
  t := 1.;
  let inner1 = Obs.span_begin obs "inner" in
  t := 2.;
  Obs.span_end obs inner1;
  t := 3.;
  let inner2 = Obs.span_begin obs "inner" in
  t := 5.;
  Obs.span_end obs inner2;
  t := 10.;
  Obs.span_end obs outer;
  let st name =
    match Obs.Agg.span_stat agg name with
    | Some st -> st
    | None -> Alcotest.failf "no span row for %s" name
  in
  let o = st "outer" and i = st "inner" in
  Alcotest.(check int) "outer calls" 1 o.Obs.Agg.calls;
  Alcotest.(check (float 1e-12)) "outer total" 10. o.Obs.Agg.total;
  Alcotest.(check (float 1e-12)) "outer max" 10. o.Obs.Agg.max;
  Alcotest.(check int) "inner calls" 2 i.Obs.Agg.calls;
  Alcotest.(check (float 1e-12)) "inner total" 3. i.Obs.Agg.total;
  Alcotest.(check (float 1e-12)) "inner max" 2. i.Obs.Agg.max;
  (* nested spans never leak into the enclosing row *)
  Alcotest.(check bool) "outer >= sum of inners" true
    (o.Obs.Agg.total >= i.Obs.Agg.total)

let test_agg_counter_sums () =
  let agg = Obs.Agg.create () in
  let obs = Obs.make ~agg () in
  Obs.count obs "c" 3;
  Obs.count obs "c" 4;
  Obs.add obs "c" 0.5;
  Obs.add obs "other" 2.;
  Alcotest.(check (float 1e-12)) "summed" 7.5 (Obs.Agg.counter agg "c");
  Alcotest.(check (float 1e-12)) "independent" 2. (Obs.Agg.counter agg "other");
  Alcotest.(check (float 1e-12)) "absent is 0" 0. (Obs.Agg.counter agg "nope");
  Alcotest.(check int) "two rows" 2 (List.length (Obs.Agg.counters agg));
  Obs.Agg.reset agg;
  Alcotest.(check (float 1e-12)) "reset" 0. (Obs.Agg.counter agg "c")

let test_agg_gauges () =
  let agg = Obs.Agg.create () in
  let obs = Obs.make ~agg () in
  Obs.gauge obs "g" 3.;
  Obs.gauge obs "g" 1.;
  Obs.gauge obs "g" 2.;
  match Obs.Agg.gauge_stat agg "g" with
  | None -> Alcotest.fail "no gauge row"
  | Some g ->
      Alcotest.(check (float 1e-12)) "last" 2. g.Obs.Agg.last;
      Alcotest.(check (float 1e-12)) "min" 1. g.Obs.Agg.g_min;
      Alcotest.(check (float 1e-12)) "max" 3. g.Obs.Agg.g_max;
      Alcotest.(check int) "samples" 3 g.Obs.Agg.samples

let test_off_is_inert () =
  Alcotest.(check bool) "off disabled" false (Obs.enabled Obs.off);
  (* probes on off are no-ops and ending the null span is safe *)
  Obs.count Obs.off "c" 1;
  Obs.gauge Obs.off "g" 1.;
  let sp = Obs.span_begin Obs.off "s" in
  Obs.span_end Obs.off sp;
  (* make with no sink degenerates to off *)
  Alcotest.(check bool) "sinkless make disabled" false
    (Obs.enabled (Obs.make ()))

(* --- JSON ------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Obs.Json.Obj
      [
        ("s", Obs.Json.Str "a \"quoted\"\n\ttab");
        ("n", Obs.Json.Num 0.1);
        ("big", Obs.Json.Num 1e17);
        ("neg", Obs.Json.Num (-42.));
        ("b", Obs.Json.Bool true);
        ("z", Obs.Json.Null);
        ("a", Obs.Json.Arr [ Obs.Json.Num 1.; Obs.Json.Bool false ]);
      ]
  in
  let v' = Obs.Json.of_string (Obs.Json.to_string v) in
  Alcotest.(check bool) "round-trips" true (v = v');
  Alcotest.(check bool) "member" true
    (Obs.Json.member "b" v' = Some (Obs.Json.Bool true));
  (* non-finite numbers degrade to null rather than invalid JSON *)
  Alcotest.(check string) "nan is null" "null"
    (Obs.Json.to_string (Obs.Json.Num Float.nan));
  Alcotest.(check bool) "malformed input raises" true
    (match Obs.Json.of_string "{" with
    | exception Failure _ -> true
    | _ -> false)

(* --- trace sink ------------------------------------------------- *)

let test_trace_schema () =
  let file = Filename.temp_file "umf_test_obs" ".ndjson" in
  let oc = open_out file in
  let tr = Obs.Trace.to_channel oc in
  let t = ref 0. in
  let obs = Obs.make ~clock:(fake_clock t) ~trace:tr () in
  let sp = Obs.span_begin obs "work" in
  t := 2.5;
  Obs.span_end ~metrics:[ ("iters", 7.) ] obs sp;
  Obs.count obs "hits" 3;
  Obs.gauge obs "width" 0.25;
  Obs.Trace.flush tr;
  close_out oc;
  let ic = open_in file in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove file;
  let events = List.rev_map Obs.Json.of_string !lines in
  Alcotest.(check int) "three events" 3 (List.length events);
  let num name ev =
    match Obs.Json.member name ev with
    | Some (Obs.Json.Num v) -> v
    | _ -> Alcotest.failf "missing numeric field %s" name
  in
  let find kind name =
    match
      List.find_opt
        (fun ev ->
          Obs.Json.member "ev" ev = Some (Obs.Json.Str kind)
          && Obs.Json.member "name" ev = Some (Obs.Json.Str name))
        events
    with
    | Some ev -> ev
    | None -> Alcotest.failf "no %s event named %s" kind name
  in
  let span = find "span" "work" in
  Alcotest.(check (float 1e-12)) "span end time" 2.5 (num "t" span);
  Alcotest.(check (float 1e-12)) "span duration" 2.5 (num "dur" span);
  Alcotest.(check (float 1e-12)) "extra metric field" 7. (num "iters" span);
  Alcotest.(check (float 1e-12)) "count value" 3. (num "v" (find "count" "hits"));
  Alcotest.(check (float 1e-12)) "gauge value" 0.25
    (num "v" (find "gauge" "width"))

(* --- solver determinism ---------------------------------------- *)

let p = Sir.default_params

let model = Sir.make p

let times = [| 0.5; 1.; 2. |]

(* obs on vs off must be bit-identical, sequentially and on a pool *)
let test_determinism_bounds () =
  let spec ?pool ?obs () =
    Analysis.spec ~scenario:(Analysis.Uncertain 5) ~steps:60 ?pool ?obs model
  in
  let plain = Analysis.transient_bounds ~times (spec ()) ~x0:Sir.x0 ~coord:1 in
  let seq_obs =
    let agg = Obs.Agg.create () in
    Analysis.transient_bounds ~times
      (spec ~obs:(Obs.make ~agg ()) ())
      ~x0:Sir.x0 ~coord:1
  in
  let pool_obs, pool_spans =
    Runtime.Pool.with_pool ~domains:4 (fun pool ->
        let agg = Obs.Agg.create () in
        let b =
          Analysis.transient_bounds ~times
            (spec ~pool ~obs:(Obs.make ~agg ()) ())
            ~x0:Sir.x0 ~coord:1
        in
        (b, Obs.Agg.span_stats agg))
  in
  Alcotest.(check bool) "seq obs-on identical" true
    (plain.Analysis.lower = seq_obs.Analysis.lower
    && plain.Analysis.upper = seq_obs.Analysis.upper);
  Alcotest.(check bool) "4-domain obs-on identical" true
    (plain.Analysis.lower = pool_obs.Analysis.lower
    && plain.Analysis.upper = pool_obs.Analysis.upper);
  Alcotest.(check bool) "pool stage span captured" true
    (List.mem_assoc "pool.uncertain-sweep" pool_spans)

let test_determinism_cloud () =
  let spec ?pool ?obs () = Analysis.spec ~horizon:6. ?pool ?obs model in
  let cloud s =
    (Analysis.stationary_cloud s ~n:100 ~x0:Sir.x0
       ~policy:(Sir.policy_theta1 p) ~warmup:2. ~samples:8 ~seed:7)
      .Analysis.states
  in
  let plain = cloud (spec ()) in
  let seq_obs = cloud (spec ~obs:(Obs.make ~agg:(Obs.Agg.create ()) ()) ()) in
  let pool_obs =
    Runtime.Pool.with_pool ~domains:4 (fun pool ->
        cloud (spec ~pool ~obs:(Obs.make ~agg:(Obs.Agg.create ()) ()) ()))
  in
  Alcotest.(check bool) "seq obs-on identical" true (plain = seq_obs);
  Alcotest.(check bool) "4-domain obs-on identical" true (plain = pool_obs)

(* --- parent registries ------------------------------------------ *)

(* a long-lived parent accumulates gauge envelopes across ephemeral
   per-request overlays without double-counting span totals *)
let test_agg_parent_gauges () =
  let service = Obs.Agg.create () in
  (* two "requests", each with its own discarded overlay registry *)
  List.iter
    (fun (v, dur) ->
      let req = Obs.Agg.create ~parent:service () in
      Obs.Agg.record_gauge req "queue.depth" v;
      Obs.Agg.record_span req "request" ~dur;
      Obs.Agg.record_counter req "requests" 1.)
    [ (3., 0.5); (1., 0.25) ];
  (match Obs.Agg.gauge_stat service "queue.depth" with
  | None -> Alcotest.fail "gauge did not reach the parent"
  | Some g ->
      Alcotest.(check (float 1e-12)) "parent last" 1. g.Obs.Agg.last;
      Alcotest.(check (float 1e-12)) "parent min" 1. g.Obs.Agg.g_min;
      Alcotest.(check (float 1e-12)) "parent max" 3. g.Obs.Agg.g_max;
      Alcotest.(check int) "parent samples" 2 g.Obs.Agg.samples);
  (* spans and counters stay local to the overlay: the parent records
     its own endpoint spans exactly once, so no double counting *)
  Alcotest.(check bool) "spans stay local" true
    (Obs.Agg.span_stat service "request" = None);
  Alcotest.(check (float 1e-12)) "counters stay local" 0.
    (Obs.Agg.counter service "requests");
  (* grandparent chains propagate gauges all the way up *)
  let root = Obs.Agg.create () in
  let mid = Obs.Agg.create ~parent:root () in
  let leaf = Obs.Agg.create ~parent:mid () in
  Obs.Agg.record_gauge leaf "g" 7.;
  Alcotest.(check bool) "grandparent sees gauge" true
    (Obs.Agg.gauge_stat root "g" <> None);
  (* reset clears only the child's rows *)
  let parent = Obs.Agg.create () in
  let child = Obs.Agg.create ~parent () in
  Obs.Agg.record_gauge child "g" 1.;
  Obs.Agg.reset child;
  Alcotest.(check bool) "child reset" true
    (Obs.Agg.gauge_stat child "g" = None);
  Alcotest.(check bool) "parent survives child reset" true
    (Obs.Agg.gauge_stat parent "g" <> None)

(* with_agg keeps the existing sinks, so gauges recorded under an
   overlay reach both the overlay and the base registry *)
let test_with_agg_overlay_feeds_both () =
  let base = Obs.Agg.create () in
  let overlay = Obs.Agg.create () in
  let obs = Obs.with_agg (Obs.make ~agg:base ()) overlay in
  Obs.gauge obs "g" 5.;
  Alcotest.(check bool) "overlay sees gauge" true
    (Obs.Agg.gauge_stat overlay "g" <> None);
  Alcotest.(check bool) "base sees gauge" true
    (Obs.Agg.gauge_stat base "g" <> None)

(* --- owning trace sinks ------------------------------------------ *)

let test_trace_to_file_close () =
  let file = Filename.temp_file "umf_test_obs_own" ".ndjson" in
  let tr = Obs.Trace.to_file file in
  let obs = Obs.make ~trace:tr () in
  Obs.count obs "a" 1;
  Obs.count obs "b" 2;
  Obs.Trace.close tr;
  (* idempotent close; post-close events are dropped, not crashes *)
  Obs.Trace.close tr;
  Obs.count obs "after-close" 3;
  Obs.Trace.flush tr;
  let ic = open_in file in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Alcotest.(check int) "both events flushed, none after close" 2
    (List.length lines);
  List.iter
    (fun l ->
      match Obs.Json.of_string l with
      | Obs.Json.Obj _ -> ()
      | _ -> Alcotest.fail "trace line is not an object")
    lines;
  Sys.remove file;
  (* per-record flush (the default) survives an abandoned channel: the
     bytes are already in the file even without close *)
  let file2 = Filename.temp_file "umf_test_obs_noclose" ".ndjson" in
  let tr2 = Obs.Trace.to_file file2 in
  Obs.count (Obs.make ~trace:tr2 ()) "tail" 1;
  let ic2 = open_in file2 in
  let line = input_line ic2 in
  close_in ic2;
  Alcotest.(check bool) "tail visible before close" true
    (String.length line > 0);
  Obs.Trace.close tr2;
  Sys.remove file2;
  (* negative flush intervals are rejected *)
  Alcotest.(check bool) "negative interval rejected" true
    (match Obs.Trace.to_file ~flush_interval:(-1.) "/dev/null" with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- deadline clocks --------------------------------------------- *)

exception Expired

let test_with_clock_deadline () =
  let t = ref 0. in
  let agg = Obs.Agg.create () in
  let base = Obs.make ~clock:(fake_clock t) ~agg () in
  let obs =
    Obs.with_clock base (fun () ->
        if !t > 1. then raise Expired;
        !t)
  in
  (* before the deadline, probes behave normally *)
  let sp = Obs.span_begin obs "work" in
  t := 0.5;
  Obs.span_end obs sp;
  Alcotest.(check bool) "span recorded" true
    (Obs.Agg.span_stat agg "work" <> None);
  (* past the deadline, the next probe raises — the cancellation point *)
  t := 2.;
  Alcotest.(check bool) "probe raises past deadline" true
    (match Obs.span_begin obs "late" with
    | exception Expired -> true
    | _ -> false);
  (* with_agg preserves a replaced clock (the daemon overlays a
     request registry on top of the deadline clock) *)
  let obs' = Obs.with_agg obs (Obs.Agg.create ()) in
  Alcotest.(check bool) "overlay keeps the deadline clock" true
    (match Obs.span_begin obs' "late" with
    | exception Expired -> true
    | _ -> false);
  (* off stays off *)
  Alcotest.(check bool) "with_clock on off is off" false
    (Obs.enabled (Obs.with_clock Obs.off (fun () -> 0.)))

let () =
  Alcotest.run "umf_obs"
    [
      ( "agg",
        [
          Alcotest.test_case "span nesting" `Quick test_agg_span_nesting;
          Alcotest.test_case "counter sums" `Quick test_agg_counter_sums;
          Alcotest.test_case "gauges" `Quick test_agg_gauges;
          Alcotest.test_case "off is inert" `Quick test_off_is_inert;
          Alcotest.test_case "parent gauges" `Quick test_agg_parent_gauges;
          Alcotest.test_case "overlay feeds both" `Quick
            test_with_agg_overlay_feeds_both;
        ] );
      ( "json",
        [ Alcotest.test_case "round-trip" `Quick test_json_roundtrip ] );
      ( "trace",
        [
          Alcotest.test_case "NDJSON schema" `Quick test_trace_schema;
          Alcotest.test_case "owning file sink" `Quick
            test_trace_to_file_close;
        ] );
      ( "clock",
        [
          Alcotest.test_case "deadline clock" `Quick test_with_clock_deadline;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "bounds obs on/off" `Quick
            test_determinism_bounds;
          Alcotest.test_case "cloud obs on/off" `Quick test_determinism_cloud;
        ] );
    ]
