(* Traced end-to-end SIR analysis (the @obs-smoke alias): runs an
   uncertain transient-bounds sweep on a 2-domain pool, an imprecise
   (Pontryagin) sweep, and a Birkhoff region, all under one NDJSON
   trace, then re-parses every line and checks the event schema and
   span coverage.  Fails loudly on any malformed or missing event. *)
open Umf

let fail msg =
  prerr_endline ("obs-smoke: " ^ msg);
  exit 1

let () =
  let file = Filename.temp_file "umf_obs_smoke" ".ndjson" in
  let p = Sir.default_params in
  let model = Sir.make p in
  let agg = Obs.Agg.create () in
  let oc = open_out file in
  let tr = Obs.Trace.to_channel oc in
  let obs = Obs.make ~agg ~trace:tr () in
  let times = [| 0.5; 1. |] in
  Runtime.Pool.with_pool ~domains:2 (fun pool ->
      let su =
        Analysis.spec ~scenario:(Analysis.Uncertain 4) ~steps:60 ~pool ~obs
          model
      in
      ignore (Analysis.transient_bounds ~times su ~x0:Sir.x0 ~coord:1));
  let si = Analysis.spec ~steps:60 ~obs model in
  ignore (Analysis.transient_bounds ~times si ~x0:Sir.x0 ~coord:1);
  ignore
    (Analysis.steady_state_region_2d ~x_start:Sir.x0 (Analysis.spec ~obs model));
  Obs.Trace.flush tr;
  close_out oc;
  (* every line must parse as a JSON object obeying the event schema *)
  let ic = open_in file in
  let events = ref [] in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         match Obs.Json.of_string line with
         | Obs.Json.Obj _ as ev -> events := ev :: !events
         | _ -> fail ("non-object line: " ^ line)
         | exception Failure m -> fail ("unparseable line (" ^ m ^ "): " ^ line)
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove file;
  let events = List.rev !events in
  if events = [] then fail "empty trace";
  let str field ev =
    match Obs.Json.member field ev with
    | Some (Obs.Json.Str s) -> s
    | _ -> fail ("event without string field " ^ field)
  in
  let num field ev =
    match Obs.Json.member field ev with
    | Some (Obs.Json.Num v) -> v
    | _ -> fail ("event without numeric field " ^ field)
  in
  List.iter
    (fun ev ->
      ignore (str "name" ev);
      ignore (num "t" ev);
      match str "ev" ev with
      | "span" -> if num "dur" ev < 0. then fail "negative span duration"
      | "count" | "gauge" -> ignore (num "v" ev)
      | k -> fail ("unknown event kind " ^ k))
    events;
  let has name =
    List.exists
      (fun ev -> Obs.Json.member "name" ev = Some (Obs.Json.Str name))
      events
  in
  List.iter
    (fun name -> if not (has name) then fail ("no event named " ^ name))
    [
      "analysis.transient_bounds";
      "uncertain.sweep";
      "ode.integrate";
      "pontryagin.solve";
      "pontryagin.sweeps";
      "birkhoff.compute";
      "pool.uncertain-sweep";
    ];
  Printf.printf "obs-smoke OK (%d events, %d span rows aggregated)\n"
    (List.length events)
    (List.length (Obs.Agg.span_stats agg))
